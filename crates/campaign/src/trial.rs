//! One fault-injection trial: build a fresh RMT system, run to the
//! injection point, strike, and classify the outcome against the
//! paper's coverage invariant and a differential oracle.

use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore, ReferenceExecutor};
use rmt3d_rmt::{DirectedOutcome, DrawnFault, EccConfig, FaultSite, RmtConfig, RmtSystem};
use rmt3d_workload::{Benchmark, TraceGenerator};

/// A fully-determined single-fault experiment. Two runs of the same
/// spec produce bit-identical [`TrialResult`]s, which is what lets the
/// campaign run in parallel, the shrinker re-execute candidates, and a
/// fixture replay a failure years later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Position in the campaign grid (0 for ad-hoc/shrunk trials).
    pub index: usize,
    /// Strike site.
    pub site: FaultSite,
    /// Workload driving the leader.
    pub benchmark: Benchmark,
    /// ECC protection in force (the sabotage knob disables one site).
    pub ecc: EccConfig,
    /// Leader commits before the final drain.
    pub instructions: u64,
    /// Committed-instruction count at which the fault strikes.
    pub inject_at: u64,
    /// Bit position flipped.
    pub bit: u8,
    /// Register index (trailer-regfile strikes only).
    pub reg: u8,
}

impl TrialSpec {
    /// Human-readable label (`"leader_result/gzip@4000"`).
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{}",
            self.site.name(),
            self.benchmark.name(),
            self.inject_at
        )
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the injection point falls outside the run
    /// or the bit/register indices are out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.inject_at == 0 || self.inject_at >= self.instructions {
            return Err(format!(
                "inject_at {} must be in 1..{}",
                self.inject_at, self.instructions
            ));
        }
        if self.bit >= 64 {
            return Err(format!("bit {} out of range", self.bit));
        }
        if self.reg == 0 || self.reg >= 64 {
            return Err(format!("reg {} must be in 1..64", self.reg));
        }
        Ok(())
    }
}

/// How a trial's fault played out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialFate {
    /// ECC absorbed the strike.
    CorrectedByEcc,
    /// The checker flagged the corruption and recovery restored clean
    /// state.
    DetectedRecovered,
    /// The flip never reached an architectural comparison and the final
    /// state is clean (BOQ hints).
    MaskedHarmless,
    /// No suitable target op ever appeared (grid bug, not a coverage
    /// result).
    NotInjected,
}

impl TrialFate {
    /// All fates.
    pub const ALL: [TrialFate; 4] = [
        TrialFate::CorrectedByEcc,
        TrialFate::DetectedRecovered,
        TrialFate::MaskedHarmless,
        TrialFate::NotInjected,
    ];

    /// Parses a [`TrialFate::name`] label.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized label.
    pub fn parse(label: &str) -> Result<TrialFate, String> {
        TrialFate::ALL
            .into_iter()
            .find(|f| f.name() == label)
            .ok_or_else(|| format!("unknown fate '{label}'"))
    }

    /// Stable snake_case label for reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            TrialFate::CorrectedByEcc => "corrected_by_ecc",
            TrialFate::DetectedRecovered => "detected_recovered",
            TrialFate::MaskedHarmless => "masked_harmless",
            TrialFate::NotInjected => "not_injected",
        }
    }
}

/// A breach of the paper's coverage invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Architectural state diverged from the reference executor with no
    /// detection — corruption escaped to commit.
    SilentCorruption,
    /// The checker detected the fault but recovery restored corrupt
    /// state (the §3.5 multi-error concern).
    UnrecoverableRecovery,
    /// The site's faults must be detected, but this one was masked.
    MissedDetection,
    /// The site's faults must be invisible (corrected or masked), but
    /// the checker flagged one — a false positive costing a recovery.
    UnexpectedDetection,
    /// The injector never found a target op, so the trial proves
    /// nothing.
    TargetUnavailable,
}

impl Violation {
    /// All violation kinds.
    pub const ALL: [Violation; 5] = [
        Violation::SilentCorruption,
        Violation::UnrecoverableRecovery,
        Violation::MissedDetection,
        Violation::UnexpectedDetection,
        Violation::TargetUnavailable,
    ];

    /// Parses a [`Violation::name`] label.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized label.
    pub fn parse(label: &str) -> Result<Violation, String> {
        Violation::ALL
            .into_iter()
            .find(|v| v.name() == label)
            .ok_or_else(|| format!("unknown violation '{label}'"))
    }

    /// Stable snake_case label for reports and fixtures.
    pub fn name(self) -> &'static str {
        match self {
            Violation::SilentCorruption => "silent_corruption",
            Violation::UnrecoverableRecovery => "unrecoverable_recovery",
            Violation::MissedDetection => "missed_detection",
            Violation::UnexpectedDetection => "unexpected_detection",
            Violation::TargetUnavailable => "target_unavailable",
        }
    }
}

/// What the coverage invariant demands of a strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// ECC must absorb it.
    Corrected,
    /// The checker must flag it and recovery must restore clean state.
    Detected,
    /// It must stay invisible (never compared architecturally) and the
    /// final state must be clean.
    Masked,
    /// No guarantee beyond "detected faults recover and nothing escapes
    /// silently" — the sabotaged-ECC regime, where violations are the
    /// expected find.
    AnyClean,
}

/// The paper's §2 coverage table. Deliberately a wildcard-free match:
/// adding a [`FaultSite`] variant fails compilation here until the
/// campaign states what the invariant requires of it.
pub fn expected_fate(site: FaultSite, ecc: EccConfig) -> Expectation {
    match site {
        FaultSite::LeaderResult => Expectation::Detected,
        FaultSite::RvqOperand => Expectation::Detected,
        FaultSite::LvqValue => {
            if ecc.lvq {
                Expectation::Corrected
            } else {
                // Without ECC the corrupt LVQ value still feeds the
                // checker's result comparison.
                Expectation::Detected
            }
        }
        FaultSite::BoqOutcome => Expectation::Masked,
        FaultSite::TrailerRegfile => {
            if ecc.trailer_regfile {
                Expectation::Corrected
            } else {
                // The recovery point itself is unprotected: the paper
                // makes no promise (that is why it requires this ECC).
                Expectation::AnyClean
            }
        }
    }
}

/// Everything one trial observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialResult {
    /// Classified fate.
    pub fate: TrialFate,
    /// The invariant breach, if any.
    pub violation: Option<Violation>,
    /// Leader cycles from injection to the checker's first detection
    /// (0 when nothing was detected).
    pub detect_cycles: u64,
    /// Checker mismatches flagged.
    pub detections: u64,
    /// Recovery procedures executed.
    pub recoveries: u64,
    /// Instructions the leader committed.
    pub committed: u64,
}

impl TrialResult {
    /// True when the coverage invariant held.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs one trial to completion and classifies it.
///
/// The system runs to `inject_at` committed instructions, strikes (or
/// lets ECC absorb the strike), runs to `instructions`, drains the
/// checker, and then cross-checks three independent views of the final
/// architectural state: the leader register file, the trailer register
/// file, and a [`ReferenceExecutor`] replay of the same trace — ground
/// truth computed with no pipeline, queue, or recovery machinery.
///
/// # Panics
///
/// Panics if the spec fails [`TrialSpec::validate`].
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    spec.validate().expect("invalid trial spec");
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(spec.benchmark.profile()),
        CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
    );
    let mut sys = RmtSystem::new(leader, RmtConfig::paper());
    sys.prefill_caches();
    while sys.leader().activity().committed < spec.inject_at {
        sys.step();
    }

    let fault = DrawnFault {
        site: spec.site,
        bit: spec.bit,
        reg: spec.reg,
    };
    let mut injected = sys.inject_directed(fault, spec.ecc);
    // Payload sites need a suitable op in the RVQ; step until one shows
    // up (a branch or load is at most a few commits away).
    while injected == DirectedOutcome::NoTarget
        && sys.leader().activity().committed < spec.instructions
    {
        sys.step();
        injected = sys.inject_directed(fault, spec.ecc);
    }
    if injected == DirectedOutcome::NoTarget {
        return TrialResult {
            fate: TrialFate::NotInjected,
            violation: Some(Violation::TargetUnavailable),
            detect_cycles: 0,
            detections: 0,
            recoveries: 0,
            committed: sys.leader().activity().committed,
        };
    }
    let inject_cycle = sys.total_cycles();

    let mut detect_cycle = None;
    while sys.leader().activity().committed < spec.instructions {
        sys.step();
        if detect_cycle.is_none() && sys.stats().detected > 0 {
            detect_cycle = Some(sys.total_cycles());
        }
    }
    sys.drain();
    if detect_cycle.is_none() && sys.stats().detected > 0 {
        // Flagged during the drain; the leader clock stops there, so
        // charge the end-of-run cycle.
        detect_cycle = Some(sys.total_cycles());
    }

    // Differential oracle: replay the committed stream independently.
    let committed = sys.leader().activity().committed;
    let mut oracle = ReferenceExecutor::new(TraceGenerator::new(spec.benchmark.profile()));
    oracle.run_to(committed);
    let states_clean = sys.leader().regfile() == oracle.regfile()
        && sys.trailer().regfile() == oracle.regfile()
        && sys.leader_matches_golden();

    let detected = sys.stats().detected > 0;
    let fate = if injected == DirectedOutcome::CorrectedByEcc {
        TrialFate::CorrectedByEcc
    } else if detected {
        TrialFate::DetectedRecovered
    } else {
        TrialFate::MaskedHarmless
    };
    let violation = classify(spec, fate, sys.stats().unrecoverable > 0, states_clean);
    TrialResult {
        fate,
        violation,
        detect_cycles: detect_cycle.map_or(0, |c| c.saturating_sub(inject_cycle)),
        detections: sys.stats().detected,
        recoveries: sys.stats().recoveries,
        committed,
    }
}

/// Applies the coverage invariant to one trial's observations.
fn classify(
    spec: &TrialSpec,
    fate: TrialFate,
    unrecoverable: bool,
    states_clean: bool,
) -> Option<Violation> {
    if unrecoverable {
        return Some(Violation::UnrecoverableRecovery);
    }
    if !states_clean {
        return Some(match fate {
            // Detected, recovery claimed success, yet the final state
            // disagrees with the oracle: the recovery point was bad.
            TrialFate::DetectedRecovered => Violation::UnrecoverableRecovery,
            _ => Violation::SilentCorruption,
        });
    }
    match expected_fate(spec.site, spec.ecc) {
        Expectation::Corrected => match fate {
            TrialFate::CorrectedByEcc => None,
            TrialFate::DetectedRecovered => Some(Violation::UnexpectedDetection),
            _ => Some(Violation::MissedDetection),
        },
        Expectation::Detected => match fate {
            TrialFate::DetectedRecovered => None,
            _ => Some(Violation::MissedDetection),
        },
        Expectation::Masked => match fate {
            TrialFate::MaskedHarmless => None,
            _ => Some(Violation::UnexpectedDetection),
        },
        Expectation::AnyClean => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(site: FaultSite) -> TrialSpec {
        TrialSpec {
            index: 0,
            site,
            benchmark: Benchmark::Gzip,
            ecc: EccConfig::paper(),
            instructions: 8_000,
            inject_at: 3_000,
            bit: 21,
            reg: 9,
        }
    }

    #[test]
    fn unprotected_sites_detect_with_positive_latency() {
        for site in [FaultSite::LeaderResult, FaultSite::RvqOperand] {
            let r = run_trial(&spec(site));
            assert_eq!(r.fate, TrialFate::DetectedRecovered, "{site:?}");
            assert!(r.ok(), "{site:?}: {:?}", r.violation);
            assert!(r.detect_cycles > 0, "{site:?} latency");
            assert!(r.recoveries >= 1);
        }
    }

    #[test]
    fn ecc_sites_are_corrected() {
        for site in [FaultSite::LvqValue, FaultSite::TrailerRegfile] {
            let r = run_trial(&spec(site));
            assert_eq!(r.fate, TrialFate::CorrectedByEcc, "{site:?}");
            assert!(r.ok());
            assert_eq!(r.detect_cycles, 0);
        }
    }

    #[test]
    fn boq_faults_are_masked_and_clean() {
        let r = run_trial(&spec(FaultSite::BoqOutcome));
        assert_eq!(r.fate, TrialFate::MaskedHarmless);
        assert!(r.ok());
    }

    #[test]
    fn lvq_without_ecc_is_still_detected() {
        let mut s = spec(FaultSite::LvqValue);
        s.ecc = EccConfig {
            lvq: false,
            trailer_regfile: true,
        };
        let r = run_trial(&s);
        assert_eq!(r.fate, TrialFate::DetectedRecovered);
        assert!(r.ok(), "{:?}", r.violation);
    }

    #[test]
    fn trials_are_deterministic() {
        let s = spec(FaultSite::RvqOperand);
        assert_eq!(run_trial(&s), run_trial(&s));
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut s = spec(FaultSite::LeaderResult);
        s.inject_at = s.instructions;
        assert!(s.validate().is_err());
        s = spec(FaultSite::LeaderResult);
        s.bit = 64;
        assert!(s.validate().is_err());
        s = spec(FaultSite::LeaderResult);
        s.reg = 0;
        assert!(s.validate().is_err());
    }
}
