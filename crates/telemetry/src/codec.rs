//! JSON Lines encoding and decoding for [`Event`].
//!
//! Every event becomes one flat object with an `"event"` discriminator.
//! Decoding returns owned [`ParsedEvent`]s (string fields become
//! `String`, since `&'static str` cannot be reconstituted from a file);
//! the round-trip tests compare events through this lossless view.

use crate::json::{parse, JsonObject, JsonValue};
use crate::sample::IntervalSample;
use crate::Event;

impl Event {
    /// Serializes the event as one JSON line (no trailing newline).
    ///
    /// When `deterministic` is true, wall-clock fields are written as 0
    /// so traces of identical runs are byte-identical.
    pub fn to_json_line(&self, deterministic: bool) -> String {
        let mut o = JsonObject::new();
        o.str("event", self.kind());
        match self {
            Event::SpanBegin { name, cycle } => {
                o.str("name", name).u64("cycle", *cycle);
            }
            Event::SpanEnd {
                name,
                cycle,
                wall_nanos,
            } => {
                o.str("name", name)
                    .u64("cycle", *cycle)
                    .u64("wall_nanos", if deterministic { 0 } else { *wall_nanos });
            }
            Event::Counter { name, cycle, value } => {
                o.str("name", name)
                    .u64("cycle", *cycle)
                    .f64("value", *value);
            }
            Event::DfsTransition {
                cycle,
                from_level,
                to_level,
                fraction,
            } => {
                o.u64("cycle", *cycle)
                    .u64("from_level", u64::from(*from_level))
                    .u64("to_level", u64::from(*to_level))
                    .f64("fraction", *fraction);
            }
            Event::FaultInjected {
                cycle,
                site,
                bit,
                corrected,
            } => {
                o.u64("cycle", *cycle)
                    .str("site", site)
                    .u64("bit", u64::from(*bit))
                    .bool("corrected", *corrected);
            }
            Event::Recovery {
                cycle,
                penalty_cycles,
                unrecoverable,
            } => {
                o.u64("cycle", *cycle)
                    .u64("penalty_cycles", *penalty_cycles)
                    .bool("unrecoverable", *unrecoverable);
            }
            Event::SolverIteration {
                iteration,
                residual,
            } => {
                o.u64("iteration", *iteration).f64("residual", *residual);
            }
            Event::Interval(s) => {
                o.u64("index", s.index)
                    .u64("cycle", s.cycle)
                    .u64("committed", s.committed)
                    .f64("ipc", s.ipc)
                    .u64("rob", u64::from(s.rob))
                    .u64("iq_int", u64::from(s.iq_int))
                    .u64("iq_fp", u64::from(s.iq_fp))
                    .u64("lsq", u64::from(s.lsq))
                    .u64("rvq", u64::from(s.rvq))
                    .u64("lvq", u64::from(s.lvq))
                    .u64("boq", u64::from(s.boq))
                    .u64("stb", u64::from(s.stb))
                    .f64("checker_fraction", s.checker_fraction)
                    .u64("dl1_accesses", s.dl1_accesses)
                    .u64("dl1_misses", s.dl1_misses)
                    .u64("l2_accesses", s.l2_accesses)
                    .u64("l2_misses", s.l2_misses)
                    .u64("commit_stall_cycles", s.commit_stall_cycles);
            }
            Event::JobStarted { job, total, label } => {
                o.u64("job", *job).u64("total", *total).str("label", label);
            }
            Event::JobFinished {
                job,
                total,
                ok,
                wall_nanos,
                eta_nanos,
            } => {
                o.u64("job", *job)
                    .u64("total", *total)
                    .bool("ok", *ok)
                    .u64("wall_nanos", if deterministic { 0 } else { *wall_nanos })
                    .u64("eta_nanos", if deterministic { 0 } else { *eta_nanos });
            }
            Event::JobCacheHit { job, total, label } => {
                o.u64("job", *job).u64("total", *total).str("label", label);
            }
            Event::PoolStats {
                workers,
                executed,
                cache_hits,
                failed,
                steals,
                busy_nanos,
                idle_nanos,
                wall_nanos,
            } => {
                // Steals are schedule-dependent (which worker claims
                // which job varies run to run), so deterministic traces
                // zero them alongside the wall clocks.
                let z = |v: &u64| if deterministic { 0 } else { *v };
                o.u64("workers", *workers)
                    .u64("executed", *executed)
                    .u64("cache_hits", *cache_hits)
                    .u64("failed", *failed)
                    .u64("steals", z(steals))
                    .u64("busy_nanos", z(busy_nanos))
                    .u64("idle_nanos", z(idle_nanos))
                    .u64("wall_nanos", z(wall_nanos));
            }
            Event::CacheStats {
                hits,
                misses,
                verify_failures,
                entries,
                bytes,
            } => {
                o.u64("hits", *hits)
                    .u64("misses", *misses)
                    .u64("verify_failures", *verify_failures)
                    .u64("entries", *entries)
                    .u64("bytes", *bytes);
            }
            Event::JobStalled {
                job,
                total,
                label,
                elapsed_nanos,
                median_nanos,
            } => {
                o.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label)
                    .u64(
                        "elapsed_nanos",
                        if deterministic { 0 } else { *elapsed_nanos },
                    )
                    .u64(
                        "median_nanos",
                        if deterministic { 0 } else { *median_nanos },
                    );
            }
            Event::JobSpanBegin { job, phase, ts } => {
                o.u64("job", *job).str("phase", phase).u64("ts", *ts);
            }
            Event::JobSpanEnd {
                job,
                phase,
                ts,
                wall_nanos,
            } => {
                o.u64("job", *job)
                    .str("phase", phase)
                    .u64("ts", *ts)
                    .u64("wall_nanos", if deterministic { 0 } else { *wall_nanos });
            }
            Event::CampaignTrial {
                trial,
                site,
                fate,
                detect_cycles,
                ok,
            } => {
                o.u64("trial", *trial)
                    .str("site", site)
                    .str("fate", fate)
                    .u64("detect_cycles", *detect_cycles)
                    .bool("ok", *ok);
            }
        }
        o.finish()
    }
}

/// An [`Event`] read back from a JSON line. Mirrors [`Event`] with
/// owned strings so decoded traces can be compared and post-processed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedEvent {
    /// See [`Event::SpanBegin`].
    SpanBegin { name: String, cycle: u64 },
    /// See [`Event::SpanEnd`].
    SpanEnd {
        name: String,
        cycle: u64,
        wall_nanos: u64,
    },
    /// See [`Event::Counter`].
    Counter {
        name: String,
        cycle: u64,
        value: f64,
    },
    /// See [`Event::DfsTransition`].
    DfsTransition {
        cycle: u64,
        from_level: u8,
        to_level: u8,
        fraction: f64,
    },
    /// See [`Event::FaultInjected`].
    FaultInjected {
        cycle: u64,
        site: String,
        bit: u8,
        corrected: bool,
    },
    /// See [`Event::Recovery`].
    Recovery {
        cycle: u64,
        penalty_cycles: u64,
        unrecoverable: bool,
    },
    /// See [`Event::SolverIteration`].
    SolverIteration { iteration: u64, residual: f64 },
    /// See [`Event::Interval`].
    Interval(IntervalSample),
    /// See [`Event::JobStarted`].
    JobStarted { job: u64, total: u64, label: String },
    /// See [`Event::JobFinished`].
    JobFinished {
        job: u64,
        total: u64,
        ok: bool,
        wall_nanos: u64,
        eta_nanos: u64,
    },
    /// See [`Event::JobCacheHit`].
    JobCacheHit { job: u64, total: u64, label: String },
    /// See [`Event::PoolStats`].
    PoolStats {
        workers: u64,
        executed: u64,
        cache_hits: u64,
        failed: u64,
        steals: u64,
        busy_nanos: u64,
        idle_nanos: u64,
        wall_nanos: u64,
    },
    /// See [`Event::CacheStats`].
    CacheStats {
        hits: u64,
        misses: u64,
        verify_failures: u64,
        entries: u64,
        bytes: u64,
    },
    /// See [`Event::JobStalled`].
    JobStalled {
        job: u64,
        total: u64,
        label: String,
        elapsed_nanos: u64,
        median_nanos: u64,
    },
    /// See [`Event::JobSpanBegin`].
    JobSpanBegin { job: u64, phase: String, ts: u64 },
    /// See [`Event::JobSpanEnd`].
    JobSpanEnd {
        job: u64,
        phase: String,
        ts: u64,
        wall_nanos: u64,
    },
    /// See [`Event::CampaignTrial`].
    CampaignTrial {
        trial: u64,
        site: String,
        fate: String,
        detect_cycles: u64,
        ok: bool,
    },
    /// The trailing metrics-summary line (`"event":"summary"`).
    Summary,
}

impl ParsedEvent {
    /// Parses one JSON line back into an event. Errors on malformed
    /// JSON, unknown discriminators, or missing fields.
    pub fn from_json_line(line: &str) -> Result<ParsedEvent, String> {
        let v = parse(line)?;
        let kind = v
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"event\" field")?
            .to_string();
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer \"{k}\""))
        };
        let f = |k: &str| -> Result<f64, String> {
            match v.get(k) {
                Some(JsonValue::Null) => Ok(f64::NAN),
                Some(x) => x.as_f64().ok_or_else(|| format!("non-number \"{k}\"")),
                None => Err(format!("missing \"{k}\"")),
            }
        };
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string \"{k}\""))
        };
        let b = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("missing or non-boolean \"{k}\""))
        };
        let byte = |k: &str| -> Result<u8, String> {
            u(k).and_then(|n| u8::try_from(n).map_err(|_| format!("\"{k}\" out of u8 range")))
        };
        Ok(match kind.as_str() {
            "span_begin" => ParsedEvent::SpanBegin {
                name: s("name")?,
                cycle: u("cycle")?,
            },
            "span_end" => ParsedEvent::SpanEnd {
                name: s("name")?,
                cycle: u("cycle")?,
                wall_nanos: u("wall_nanos")?,
            },
            "counter" => ParsedEvent::Counter {
                name: s("name")?,
                cycle: u("cycle")?,
                value: f("value")?,
            },
            "dfs_transition" => ParsedEvent::DfsTransition {
                cycle: u("cycle")?,
                from_level: byte("from_level")?,
                to_level: byte("to_level")?,
                fraction: f("fraction")?,
            },
            "fault" => ParsedEvent::FaultInjected {
                cycle: u("cycle")?,
                site: s("site")?,
                bit: byte("bit")?,
                corrected: b("corrected")?,
            },
            "recovery" => ParsedEvent::Recovery {
                cycle: u("cycle")?,
                penalty_cycles: u("penalty_cycles")?,
                unrecoverable: b("unrecoverable")?,
            },
            "solver_iteration" => ParsedEvent::SolverIteration {
                iteration: u("iteration")?,
                residual: f("residual")?,
            },
            "interval" => ParsedEvent::Interval(IntervalSample {
                index: u("index")?,
                cycle: u("cycle")?,
                committed: u("committed")?,
                ipc: f("ipc")?,
                rob: u("rob")? as u32,
                iq_int: u("iq_int")? as u32,
                iq_fp: u("iq_fp")? as u32,
                lsq: u("lsq")? as u32,
                rvq: u("rvq")? as u32,
                lvq: u("lvq")? as u32,
                boq: u("boq")? as u32,
                stb: u("stb")? as u32,
                checker_fraction: f("checker_fraction")?,
                dl1_accesses: u("dl1_accesses")?,
                dl1_misses: u("dl1_misses")?,
                l2_accesses: u("l2_accesses")?,
                l2_misses: u("l2_misses")?,
                commit_stall_cycles: u("commit_stall_cycles")?,
            }),
            "job_started" => ParsedEvent::JobStarted {
                job: u("job")?,
                total: u("total")?,
                label: s("label")?,
            },
            "job_finished" => ParsedEvent::JobFinished {
                job: u("job")?,
                total: u("total")?,
                ok: b("ok")?,
                wall_nanos: u("wall_nanos")?,
                eta_nanos: u("eta_nanos")?,
            },
            "job_cache_hit" => ParsedEvent::JobCacheHit {
                job: u("job")?,
                total: u("total")?,
                label: s("label")?,
            },
            "pool_stats" => ParsedEvent::PoolStats {
                workers: u("workers")?,
                executed: u("executed")?,
                cache_hits: u("cache_hits")?,
                failed: u("failed")?,
                steals: u("steals")?,
                busy_nanos: u("busy_nanos")?,
                idle_nanos: u("idle_nanos")?,
                wall_nanos: u("wall_nanos")?,
            },
            "cache_stats" => ParsedEvent::CacheStats {
                hits: u("hits")?,
                misses: u("misses")?,
                verify_failures: u("verify_failures")?,
                entries: u("entries")?,
                bytes: u("bytes")?,
            },
            "job_stalled" => ParsedEvent::JobStalled {
                job: u("job")?,
                total: u("total")?,
                label: s("label")?,
                elapsed_nanos: u("elapsed_nanos")?,
                median_nanos: u("median_nanos")?,
            },
            "job_span_begin" => ParsedEvent::JobSpanBegin {
                job: u("job")?,
                phase: s("phase")?,
                ts: u("ts")?,
            },
            "job_span_end" => ParsedEvent::JobSpanEnd {
                job: u("job")?,
                phase: s("phase")?,
                ts: u("ts")?,
                wall_nanos: u("wall_nanos")?,
            },
            "campaign_trial" => ParsedEvent::CampaignTrial {
                trial: u("trial")?,
                site: s("site")?,
                fate: s("fate")?,
                detect_cycles: u("detect_cycles")?,
                ok: b("ok")?,
            },
            "summary" => ParsedEvent::Summary,
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }

    /// The `"event"` discriminator this variant serializes under
    /// (mirrors [`Event::kind`], plus `"summary"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ParsedEvent::SpanBegin { .. } => "span_begin",
            ParsedEvent::SpanEnd { .. } => "span_end",
            ParsedEvent::Counter { .. } => "counter",
            ParsedEvent::DfsTransition { .. } => "dfs_transition",
            ParsedEvent::FaultInjected { .. } => "fault",
            ParsedEvent::Recovery { .. } => "recovery",
            ParsedEvent::SolverIteration { .. } => "solver_iteration",
            ParsedEvent::Interval(_) => "interval",
            ParsedEvent::JobStarted { .. } => "job_started",
            ParsedEvent::JobFinished { .. } => "job_finished",
            ParsedEvent::JobCacheHit { .. } => "job_cache_hit",
            ParsedEvent::PoolStats { .. } => "pool_stats",
            ParsedEvent::CacheStats { .. } => "cache_stats",
            ParsedEvent::JobStalled { .. } => "job_stalled",
            ParsedEvent::JobSpanBegin { .. } => "job_span_begin",
            ParsedEvent::JobSpanEnd { .. } => "job_span_end",
            ParsedEvent::CampaignTrial { .. } => "campaign_trial",
            ParsedEvent::Summary => "summary",
        }
    }

    /// True when this parsed event equals the given in-memory event
    /// (string fields compared by content, wall clocks ignored when
    /// `deterministic`).
    pub fn matches(&self, event: &Event, deterministic: bool) -> bool {
        match (self, event) {
            (ParsedEvent::SpanBegin { name, cycle }, Event::SpanBegin { name: n, cycle: c }) => {
                name == n && cycle == c
            }
            (
                ParsedEvent::SpanEnd {
                    name,
                    cycle,
                    wall_nanos,
                },
                Event::SpanEnd {
                    name: n,
                    cycle: c,
                    wall_nanos: w,
                },
            ) => name == n && cycle == c && (deterministic || wall_nanos == w),
            (
                ParsedEvent::Counter { name, cycle, value },
                Event::Counter {
                    name: n,
                    cycle: c,
                    value: x,
                },
            ) => name == n && cycle == c && value == x,
            (
                ParsedEvent::DfsTransition {
                    cycle,
                    from_level,
                    to_level,
                    fraction,
                },
                Event::DfsTransition {
                    cycle: c,
                    from_level: fl,
                    to_level: tl,
                    fraction: fr,
                },
            ) => cycle == c && from_level == fl && to_level == tl && fraction == fr,
            (
                ParsedEvent::FaultInjected {
                    cycle,
                    site,
                    bit,
                    corrected,
                },
                Event::FaultInjected {
                    cycle: c,
                    site: s,
                    bit: bi,
                    corrected: co,
                },
            ) => cycle == c && site == s && bit == bi && corrected == co,
            (
                ParsedEvent::Recovery {
                    cycle,
                    penalty_cycles,
                    unrecoverable,
                },
                Event::Recovery {
                    cycle: c,
                    penalty_cycles: p,
                    unrecoverable: un,
                },
            ) => cycle == c && penalty_cycles == p && unrecoverable == un,
            (
                ParsedEvent::SolverIteration {
                    iteration,
                    residual,
                },
                Event::SolverIteration {
                    iteration: i,
                    residual: r,
                },
            ) => iteration == i && residual == r,
            (ParsedEvent::Interval(a), Event::Interval(b)) => a == b,
            (
                ParsedEvent::JobStarted { job, total, label },
                Event::JobStarted {
                    job: j,
                    total: t,
                    label: l,
                },
            ) => job == j && total == t && label == l,
            (
                ParsedEvent::JobFinished {
                    job,
                    total,
                    ok,
                    wall_nanos,
                    eta_nanos,
                },
                Event::JobFinished {
                    job: j,
                    total: t,
                    ok: o,
                    wall_nanos: w,
                    eta_nanos: e,
                },
            ) => {
                job == j
                    && total == t
                    && ok == o
                    && (deterministic || (wall_nanos == w && eta_nanos == e))
            }
            (
                ParsedEvent::JobCacheHit { job, total, label },
                Event::JobCacheHit {
                    job: j,
                    total: t,
                    label: l,
                },
            ) => job == j && total == t && label == l,
            (
                ParsedEvent::PoolStats {
                    workers,
                    executed,
                    cache_hits,
                    failed,
                    steals,
                    busy_nanos,
                    idle_nanos,
                    wall_nanos,
                },
                Event::PoolStats {
                    workers: w,
                    executed: e,
                    cache_hits: ch,
                    failed: fa,
                    steals: st,
                    busy_nanos: bn,
                    idle_nanos: i,
                    wall_nanos: wn,
                },
            ) => {
                workers == w
                    && executed == e
                    && cache_hits == ch
                    && failed == fa
                    && (deterministic
                        || (steals == st
                            && busy_nanos == bn
                            && idle_nanos == i
                            && wall_nanos == wn))
            }
            (
                ParsedEvent::CacheStats {
                    hits,
                    misses,
                    verify_failures,
                    entries,
                    bytes,
                },
                Event::CacheStats {
                    hits: h,
                    misses: m,
                    verify_failures: vf,
                    entries: en,
                    bytes: by,
                },
            ) => hits == h && misses == m && verify_failures == vf && entries == en && bytes == by,
            (
                ParsedEvent::JobStalled {
                    job,
                    total,
                    label,
                    elapsed_nanos,
                    median_nanos,
                },
                Event::JobStalled {
                    job: j,
                    total: t,
                    label: l,
                    elapsed_nanos: el,
                    median_nanos: me,
                },
            ) => {
                job == j
                    && total == t
                    && label == l
                    && (deterministic || (elapsed_nanos == el && median_nanos == me))
            }
            (
                ParsedEvent::JobSpanBegin { job, phase, ts },
                Event::JobSpanBegin {
                    job: j,
                    phase: p,
                    ts: t,
                },
            ) => job == j && phase == p && ts == t,
            (
                ParsedEvent::JobSpanEnd {
                    job,
                    phase,
                    ts,
                    wall_nanos,
                },
                Event::JobSpanEnd {
                    job: j,
                    phase: p,
                    ts: t,
                    wall_nanos: w,
                },
            ) => job == j && phase == p && ts == t && (deterministic || wall_nanos == w),
            (
                ParsedEvent::CampaignTrial {
                    trial,
                    site,
                    fate,
                    detect_cycles,
                    ok,
                },
                Event::CampaignTrial {
                    trial: tr,
                    site: s,
                    fate: fa,
                    detect_cycles: d,
                    ok: o,
                },
            ) => trial == tr && site == s && fate == fa && detect_cycles == d && ok == o,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_round_trips() {
        // `Event::examples()` is exhaustiveness-checked: a new variant
        // cannot compile without joining this round-trip.
        for event in Event::examples() {
            let line = event.to_json_line(false);
            let parsed =
                ParsedEvent::from_json_line(&line).unwrap_or_else(|e| panic!("parse {line}: {e}"));
            assert!(parsed.matches(&event, false), "mismatch for {line}");
        }
    }

    #[test]
    fn deterministic_round_trip_zeroes_only_wall_clocks() {
        for event in Event::examples() {
            let line = event.to_json_line(true);
            let parsed =
                ParsedEvent::from_json_line(&line).unwrap_or_else(|e| panic!("parse {line}: {e}"));
            assert!(parsed.matches(&event, true), "mismatch for {line}");
        }
    }

    #[test]
    fn deterministic_mode_zeroes_wall_clock() {
        let event = Event::SpanEnd {
            name: "x",
            cycle: 1,
            wall_nanos: 42,
        };
        let line = event.to_json_line(true);
        match ParsedEvent::from_json_line(&line).unwrap() {
            ParsedEvent::SpanEnd { wall_nanos, .. } => assert_eq!(wall_nanos, 0),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_an_error() {
        assert!(ParsedEvent::from_json_line(r#"{"event":"bogus"}"#).is_err());
        assert!(ParsedEvent::from_json_line(r#"{"cycle":1}"#).is_err());
    }
}
