//! Property tests over the RMT machinery: queue conservation, DFS
//! boundedness, fault-injection coverage and recovery invariants.

use proptest::prelude::*;
use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_rmt::{
    DfsConfig, EccConfig, IntercoreQueues, QueueConfig, RmtConfig, RmtSystem, TmrSystem,
};
use rmt3d_workload::{ArchReg, Benchmark, MemRef, MicroOp, OpClass, TraceGenerator};

fn item(seq: u64, kind: OpClass) -> rmt3d_cpu::CommittedOp {
    rmt3d_cpu::CommittedOp {
        op: MicroOp {
            seq,
            pc: 0x40_0000,
            kind,
            dest: kind.writes_register().then(|| ArchReg::new(1)),
            src1_dist: None,
            src2_dist: None,
            src1_reg: None,
            src2_reg: None,
            imm: seq,
            mem: kind.is_memory().then_some(MemRef { addr: 64, size: 8 }),
            branch: None,
        },
        result: 0,
        src1_value: 0,
        src2_value: 0,
        load_value: (kind == OpClass::Load).then_some(1),
        store_value: (kind == OpClass::Store).then_some(2),
        commit_cycle: seq,
    }
}

fn any_kind() -> impl Strategy<Value = OpClass> {
    (0usize..7).prop_map(|i| OpClass::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queue_occupancy_is_conserved(kinds in proptest::collection::vec(any_kind(), 1..120)) {
        let mut q = IntercoreQueues::new(QueueConfig::paper());
        let mut pushed = 0usize;
        for (i, &k) in kinds.iter().enumerate() {
            if q.can_accept(1) {
                q.push(item(i as u64, k));
                pushed += 1;
            }
        }
        prop_assert_eq!(q.occupancy().rvq, pushed);
        // Draining the stream and reporting consumption empties every
        // logical queue.
        let drained: Vec<_> = q.stream_mut().drain(..).collect();
        for c in &drained {
            q.on_trailer_consumed(c.op.kind);
        }
        let o = q.occupancy();
        prop_assert_eq!((o.rvq, o.lvq, o.boq, o.stb), (0, 0, 0, 0));
        // Peaks are monotone records.
        prop_assert!(q.peak_occupancy().rvq >= 1 || pushed == 0);
    }

    #[test]
    fn dfs_histogram_mass_equals_decisions(fills in proptest::collection::vec(0.0..1.0f64, 1..50)) {
        let mut d = rmt3d_rmt::DfsController::new(DfsConfig::paper());
        let mut ticks = 0u64;
        for f in fills {
            for _ in 0..250 {
                d.tick(f);
                ticks += 1;
            }
        }
        let decisions: u64 = d.histogram_counts().iter().sum();
        prop_assert_eq!(decisions, d.intervals());
        prop_assert_eq!(d.intervals(), ticks / DfsConfig::paper().interval);
    }

    #[test]
    fn rmt_recovers_at_any_fault_rate(seed in 0u64..1000, rate_exp in 1u32..4) {
        // Rates from 1e-4 to 1e-2: with the paper ECC set, golden state
        // must always be restored.
        let rate = 10f64.powi(-(rate_exp as i32 + 1));
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Gzip.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut sys = RmtSystem::new(leader, RmtConfig::paper())
            .with_fault_injection(seed, rate, EccConfig::paper());
        sys.prefill_caches();
        sys.run_instructions(12_000);
        sys.drain();
        prop_assert_eq!(sys.stats().unrecoverable, 0);
        prop_assert!(sys.leader_matches_golden());
        // Recovery squashes re-execute work architecturally, so at high
        // fault rates many instructions retire via replay instead of
        // normal verification; the invariant is golden-state equality,
        // not the verified count.
        prop_assert!(sys.stats().verified_ok > 0);
    }

    #[test]
    fn tmr_masks_everything_without_ecc(seed in 0u64..500) {
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Vpr.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut sys = TmrSystem::new(leader).with_fault_injection(seed, 2e-3, EccConfig::none());
        sys.prefill_caches();
        sys.run_instructions(10_000);
        prop_assert!(sys.leader_matches_golden(), "stats {:?}", sys.stats());
    }
}
