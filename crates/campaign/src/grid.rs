//! Campaign grids: (fault site × benchmark × injection point × bit)
//! sampling, expanded deterministically from one seed.

use crate::trial::TrialSpec;
use rmt3d_rmt::{EccConfig, FaultSite};
use rmt3d_workload::{Benchmark, SplitMix64};

/// A declarative fault-injection campaign.
///
/// Expansion draws `faults_per_cell` randomized (injection point, bit,
/// register) tuples for every (site × benchmark) cell from a single
/// [`SplitMix64`] stream, so the full trial list — and therefore the
/// whole campaign, worker count notwithstanding — is a pure function of
/// the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Strike sites to sweep.
    pub sites: Vec<FaultSite>,
    /// Workloads to sweep.
    pub benchmarks: Vec<Benchmark>,
    /// Randomized faults per (site × benchmark) cell.
    pub faults_per_cell: usize,
    /// Master seed.
    pub seed: u64,
    /// Leader commits per trial.
    pub instructions: u64,
    /// ECC protection in force for every trial.
    pub ecc: EccConfig,
}

/// Version prefix of [`CampaignSpec::canonical`]. Bumping the crate
/// version or the trailing schema revision changes every canonical
/// string, which invalidates journals and spec hashes derived from it
/// — the same discipline as the sweep cache's `CACHE_VERSION`.
pub const SPEC_VERSION: &str = concat!("rmt3d-campaign/", env!("CARGO_PKG_VERSION"), "/1");

/// The default campaign's benchmark slice: two int and two fp-adjacent
/// profiles plus the paper's canonical mcf, spanning branchy and
/// memory-bound behaviour.
pub const DEFAULT_BENCHMARKS: [Benchmark; 5] = [
    Benchmark::Gzip,
    Benchmark::Mcf,
    Benchmark::Twolf,
    Benchmark::Vpr,
    Benchmark::Swim,
];

impl CampaignSpec {
    /// The default 1000-trial grid: all five sites × five benchmarks ×
    /// 40 faults under the paper's ECC, 20k instructions per trial.
    pub fn default_grid(seed: u64) -> CampaignSpec {
        CampaignSpec {
            sites: FaultSite::ALL.to_vec(),
            benchmarks: DEFAULT_BENCHMARKS.to_vec(),
            faults_per_cell: 40,
            seed,
            instructions: 20_000,
            ecc: EccConfig::paper(),
        }
    }

    /// A small grid for CI smoke runs: all five sites × one benchmark ×
    /// 4 faults at 8k instructions (20 trials, a few seconds).
    pub fn smoke(seed: u64) -> CampaignSpec {
        CampaignSpec {
            sites: FaultSite::ALL.to_vec(),
            benchmarks: vec![Benchmark::Gzip],
            faults_per_cell: 4,
            seed,
            instructions: 8_000,
            ecc: EccConfig::paper(),
        }
    }

    /// Disables ECC at `site` (the seeded-bug mode that demonstrates
    /// the shrinker: violations become findable).
    ///
    /// # Errors
    ///
    /// Returns a message when `site` carries no ECC to disable.
    pub fn sabotage(mut self, site: FaultSite) -> Result<CampaignSpec, String> {
        match site {
            FaultSite::LvqValue => self.ecc.lvq = false,
            FaultSite::TrailerRegfile => self.ecc.trailer_regfile = false,
            other => {
                return Err(format!(
                    "site {} carries no ECC to sabotage (ECC sites: lvq_value, trailer_regfile)",
                    other.name()
                ))
            }
        }
        Ok(self)
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites.is_empty() {
            return Err("no fault sites selected".to_string());
        }
        if self.benchmarks.is_empty() {
            return Err("no benchmarks selected".to_string());
        }
        if self.faults_per_cell == 0 {
            return Err("faults-per-site must be positive".to_string());
        }
        if self.instructions < 4_000 {
            return Err(format!(
                "instructions {} too small: trials need room for warm state, \
                 an injection window, and a post-fault tail",
                self.instructions
            ));
        }
        Ok(())
    }

    /// The canonical text of this spec: every field that affects
    /// expansion, led by [`SPEC_VERSION`]. Two specs expand to the
    /// same trial list iff their canonical strings are equal, which is
    /// what lets the journal detect a resume against the wrong
    /// campaign.
    pub fn canonical(&self) -> String {
        format!(
            "{SPEC_VERSION}|sites={}|benchmarks={}|faults={}|seed={}|instructions={}|ecc_lvq={}|ecc_trailer={}",
            self.sites
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(","),
            self.benchmarks
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(","),
            self.faults_per_cell,
            self.seed,
            self.instructions,
            self.ecc.lvq,
            self.ecc.trailer_regfile,
        )
    }

    /// Total trials the grid expands to.
    pub fn total_trials(&self) -> usize {
        self.sites.len() * self.benchmarks.len() * self.faults_per_cell
    }

    /// Expands the grid into concrete trials (site-major, then
    /// benchmark, then fault index — always the same order).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`CampaignSpec::validate`].
    pub fn expand(&self) -> Vec<TrialSpec> {
        self.validate().expect("invalid campaign spec");
        let mut rng = SplitMix64::new(self.seed);
        // Strike inside the middle of the run: after warm state exists,
        // with a tail long enough to surface delayed effects.
        let lo = self.instructions / 8;
        let hi = self.instructions * 3 / 4;
        let mut trials = Vec::with_capacity(self.total_trials());
        for &site in &self.sites {
            for &benchmark in &self.benchmarks {
                for _ in 0..self.faults_per_cell {
                    trials.push(TrialSpec {
                        index: trials.len(),
                        site,
                        benchmark,
                        ecc: self.ecc,
                        instructions: self.instructions,
                        inject_at: rng.range_u64(lo, hi),
                        bit: rng.below(64) as u8,
                        // Full architectural file (int 1..32, fp 32..64):
                        // cold fp registers are exactly where latent
                        // trailer corruption hides in int-heavy profiles.
                        reg: rng.range_u64(1, 64) as u8,
                    });
                }
            }
        }
        trials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_1000_trials_over_every_site() {
        let spec = CampaignSpec::default_grid(42);
        let trials = spec.expand();
        assert_eq!(trials.len(), 1000);
        assert_eq!(trials.len(), spec.total_trials());
        for site in FaultSite::ALL {
            assert!(
                trials.iter().any(|t| t.site == site),
                "{site:?} missing from default grid"
            );
        }
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i);
            t.validate().expect("expanded trials are valid");
        }
    }

    #[test]
    fn expansion_is_seed_deterministic() {
        let a = CampaignSpec::default_grid(7).expand();
        let b = CampaignSpec::default_grid(7).expand();
        let c = CampaignSpec::default_grid(8).expand();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sabotage_only_applies_to_ecc_sites() {
        let spec = CampaignSpec::smoke(1);
        let s = spec.clone().sabotage(FaultSite::TrailerRegfile).unwrap();
        assert!(!s.ecc.trailer_regfile);
        assert!(s.ecc.lvq);
        let s = spec.clone().sabotage(FaultSite::LvqValue).unwrap();
        assert!(!s.ecc.lvq);
        assert!(spec.sabotage(FaultSite::BoqOutcome).is_err());
    }

    #[test]
    fn canonical_distinguishes_every_expansion_field() {
        let base = CampaignSpec::smoke(1);
        assert!(base.canonical().starts_with(SPEC_VERSION));
        assert_eq!(base.canonical(), CampaignSpec::smoke(1).canonical());
        let mut seeds = std::collections::BTreeSet::new();
        seeds.insert(base.canonical());
        let mut v = base.clone();
        v.seed = 2;
        seeds.insert(v.canonical());
        let mut v = base.clone();
        v.faults_per_cell = 5;
        seeds.insert(v.canonical());
        let mut v = base.clone();
        v.instructions = 9_000;
        seeds.insert(v.canonical());
        let mut v = base.clone();
        v.benchmarks = vec![Benchmark::Mcf];
        seeds.insert(v.canonical());
        let v = base.sabotage(FaultSite::LvqValue).unwrap();
        seeds.insert(v.canonical());
        assert_eq!(seeds.len(), 6, "every field must alter the canonical");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = CampaignSpec::smoke(1);
        spec.sites.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::smoke(1);
        spec.faults_per_cell = 0;
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::smoke(1);
        spec.instructions = 100;
        assert!(spec.validate().is_err());
    }
}
