//! Banked NUCA L2 cache with grid-network access latencies.

use crate::config::{CacheConfig, NucaLayout, NucaPolicy};
use crate::set_assoc::SetAssocCache;

/// Lines per 1 MB bank (64 B lines).
const LINES_PER_BANK: u64 = (1024 * 1024) / 64;

/// Result of one NUCA access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NucaAccess {
    /// Whether the block was found in the L2.
    pub hit: bool,
    /// L2-side latency in cycles (controller + network + bank + central
    /// tag where applicable). Memory latency on a miss is *not* included;
    /// the hierarchy adds it.
    pub cycles: u32,
    /// Bank that serviced (or allocated) the block.
    pub bank: usize,
}

/// Aggregate NUCA statistics for performance and power accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct NucaStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Per-bank access counts (for per-bank power/thermal maps).
    pub bank_accesses: Vec<u64>,
    /// Total router/link hops traversed (for NoC power).
    pub total_hops: u64,
    /// Central tag-array lookups (distributed-ways only).
    pub tag_lookups: u64,
    /// Sum of hit latencies (for mean hit latency).
    pub hit_cycles_sum: u64,
    /// Block migrations performed (distributed-ways only).
    pub migrations: u64,
}

impl NucaStats {
    fn new(banks: usize) -> NucaStats {
        NucaStats {
            accesses: 0,
            hits: 0,
            misses: 0,
            bank_accesses: vec![0; banks],
            total_hops: 0,
            tag_lookups: 0,
            hit_cycles_sum: 0,
            migrations: 0,
        }
    }

    /// Mean latency of hits in cycles.
    pub fn mean_hit_cycles(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.hit_cycles_sum as f64 / self.hits as f64
        }
    }

    /// Miss ratio.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Central tag entry for the distributed-ways policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WayEntry {
    tag: u64,
    bank: u16,
    valid: bool,
}

/// The paper's NUCA L2: 1 MB banks on a grid, reached from the L2
/// controller at 4 cycles/hop.
///
/// Two placement policies (§3.1):
///
/// * [`NucaPolicy::DistributedSets`]: an address maps to one bank
///   (uniform bank load). Within a bank we model an 8-way 1 MB array — a
///   power-of-two-friendly stand-in for the paper's `capacity/1 MB`-way
///   global associativity; at these sizes the within-bank associativity
///   has negligible effect on miss rate.
/// * [`NucaPolicy::DistributedWays`]: one way of every set per bank, a
///   centralized tag array consulted first, and hit-triggered migration
///   toward banks closer to the controller.
#[derive(Debug, Clone)]
pub struct NucaCache {
    layout: NucaLayout,
    policy: NucaPolicy,
    /// Data banks (tag-only models; used for the sets policy).
    banks: Vec<SetAssocCache>,
    /// Central tags for the ways policy: `sets x nbanks`, LRU first.
    central: Vec<Vec<WayEntry>>,
    /// Extra cycles for the central tag lookup.
    tag_cycles: u32,
    stats: NucaStats,
}

impl NucaCache {
    /// Creates an empty NUCA cache for a layout and policy.
    pub fn new(layout: NucaLayout, policy: NucaPolicy) -> NucaCache {
        let n = layout.bank_count();
        let banks = (0..n)
            .map(|_| SetAssocCache::new(CacheConfig::l2_bank_1mb(8, layout.bank_cycles)))
            .collect();
        let central = match policy {
            NucaPolicy::DistributedSets => Vec::new(),
            NucaPolicy::DistributedWays => {
                let entry = WayEntry {
                    tag: 0,
                    bank: 0,
                    valid: false,
                };
                (0..LINES_PER_BANK)
                    .map(|_| {
                        (0..n)
                            .map(|b| WayEntry {
                                bank: b as u16,
                                ..entry
                            })
                            .collect()
                    })
                    .collect()
            }
        };
        NucaCache {
            stats: NucaStats::new(n),
            layout,
            policy,
            banks,
            central,
            tag_cycles: 2,
        }
    }

    /// The bank layout.
    pub fn layout(&self) -> &NucaLayout {
        &self.layout
    }

    /// The placement policy.
    pub fn policy(&self) -> NucaPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NucaStats {
        &self.stats
    }

    /// Resets statistics, keeping contents (for post-warm-up measurement).
    pub fn reset_stats(&mut self) {
        self.stats = NucaStats::new(self.layout.bank_count());
    }

    /// Accesses a physical address.
    pub fn access(&mut self, addr: u64, write: bool) -> NucaAccess {
        self.stats.accesses += 1;
        let r = match self.policy {
            NucaPolicy::DistributedSets => self.access_sets(addr, write),
            NucaPolicy::DistributedWays => self.access_ways(addr),
        };
        self.stats.bank_accesses[r.bank] += 1;
        self.stats.total_hops += self.layout.hops_to(r.bank) as u64;
        if r.hit {
            self.stats.hits += 1;
            self.stats.hit_cycles_sum += r.cycles as u64;
        } else {
            self.stats.misses += 1;
        }
        r
    }

    fn access_sets(&mut self, addr: u64, write: bool) -> NucaAccess {
        let line = addr / 64;
        let n = self.layout.bank_count() as u64;
        let bank = (line % n) as usize;
        // Index the bank with the bank-local line number: using the raw
        // line for both bank selection (mod n) and set indexing (mod
        // sets) would alias whenever gcd(n, sets) > 1, wasting sets.
        let local_addr = (line / n) * 64 + (addr % 64);
        let hit = self.banks[bank].access(local_addr, write);
        NucaAccess {
            hit,
            cycles: self.layout.access_cycles(bank),
            bank,
        }
    }

    fn access_ways(&mut self, addr: u64) -> NucaAccess {
        self.stats.tag_lookups += 1;
        let line = addr / 64;
        let set = (line % LINES_PER_BANK) as usize;
        let tag = line / LINES_PER_BANK;
        let ways = &mut self.central[set];

        if let Some(pos) = ways.iter().position(|w| w.valid && w.tag == tag) {
            let bank = ways[pos].bank as usize;
            // Migration: if a less-recently-used way sits in a strictly
            // closer bank, swap bank assignments (gradual migration of
            // hot blocks toward the controller, §3.3).
            let my_cost = self.layout.access_cycles(bank);
            let mut migrated_bank = bank;
            if let Some(victim) = (pos + 1..ways.len())
                .find(|&j| self.layout.access_cycles(ways[j].bank as usize) < my_cost)
            {
                let b = ways[victim].bank;
                ways[victim].bank = ways[pos].bank;
                ways[pos].bank = b;
                migrated_bank = b as usize;
                self.stats.migrations += 1;
            }
            // Move to MRU.
            ways[..=pos].rotate_right(1);
            NucaAccess {
                hit: true,
                cycles: self.tag_cycles + self.layout.access_cycles(bank),
                bank: migrated_bank,
            }
        } else {
            // Miss: evict LRU way, reuse its bank for the new block.
            let last = ways.len() - 1;
            let bank = ways[last].bank as usize;
            ways[last] = WayEntry {
                tag,
                bank: bank as u16,
                valid: true,
            };
            ways.rotate_right(1);
            NucaAccess {
                hit: false,
                cycles: self.tag_cycles + self.layout.access_cycles(bank),
                bank,
            }
        }
    }

    /// Fraction of total capacity currently valid.
    pub fn occupancy(&self) -> f64 {
        match self.policy {
            NucaPolicy::DistributedSets => {
                self.banks.iter().map(|b| b.occupancy()).sum::<f64>() / self.banks.len() as f64
            }
            NucaPolicy::DistributedWays => {
                let valid: usize = self
                    .central
                    .iter()
                    .map(|s| s.iter().filter(|w| w.valid).count())
                    .sum();
                valid as f64 / (self.central.len() * self.layout.bank_count()) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_policy_miss_then_hit() {
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        let a = c.access(0x4000_0000, false);
        assert!(!a.hit);
        let b = c.access(0x4000_0000, false);
        assert!(b.hit);
        assert_eq!(a.bank, b.bank, "sets policy pins an address to a bank");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ways_policy_miss_then_hit() {
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedWays);
        assert!(!c.access(0x4000_0000, false).hit);
        assert!(c.access(0x4000_0000, false).hit);
        assert_eq!(c.stats().tag_lookups, 2);
    }

    #[test]
    fn ways_policy_migrates_hot_blocks_closer() {
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedWays);
        let addr = 0x4000_0000u64;
        c.access(addr, false);
        // Repeated hits migrate the block to the closest bank.
        let mut last_bank = usize::MAX;
        for _ in 0..8 {
            last_bank = c.access(addr, false).bank;
        }
        let closest = (0..c.layout().bank_count())
            .min_by_key(|&i| c.layout().access_cycles(i))
            .unwrap();
        assert_eq!(
            c.layout().access_cycles(last_bank),
            c.layout().access_cycles(closest),
            "hot block should end up at the cheapest bank"
        );
        assert!(c.stats().migrations > 0);
    }

    #[test]
    fn ways_policy_is_faster_on_skewed_reuse() {
        // With a small hot set, migration should beat the static set
        // interleaving (paper: distributed-way < 2% better overall).
        let mut sets = NucaCache::new(NucaLayout::two_d_2a(), NucaPolicy::DistributedSets);
        let mut ways = NucaCache::new(NucaLayout::two_d_2a(), NucaPolicy::DistributedWays);
        for rep in 0..200 {
            for i in 0..64u64 {
                let addr = 0x4000_0000 + i * 64;
                sets.access(addr, false);
                ways.access(addr, false);
                let _ = rep;
            }
        }
        assert!(ways.stats().mean_hit_cycles() < sets.stats().mean_hit_cycles());
    }

    #[test]
    fn capacity_eviction_under_sets_policy() {
        // Touch 2x the 6 MB capacity; early lines must be evicted.
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        let lines = 2 * 6 * 1024 * 1024 / 64;
        for i in 0..lines {
            c.access(i * 64, false);
        }
        c.reset_stats();
        let r = c.access(0, false);
        assert!(!r.hit, "oldest line must have been evicted");
    }

    #[test]
    fn ways_policy_respects_total_capacity() {
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedWays);
        // Fill exactly the capacity: 6 ways x LINES_PER_BANK sets.
        for w in 0..6u64 {
            for s in 0..LINES_PER_BANK {
                c.access((w * LINES_PER_BANK + s) * 64, false);
            }
        }
        assert!((c.occupancy() - 1.0).abs() < 1e-9);
        c.reset_stats();
        // Everything still fits.
        for w in 0..6u64 {
            for s in 0..100 {
                assert!(c.access((w * LINES_PER_BANK + s) * 64, false).hit);
            }
        }
        // One more way's worth starts evicting.
        let evicting = c.access(6 * LINES_PER_BANK * 64, false);
        assert!(!evicting.hit);
    }

    #[test]
    fn hop_accounting() {
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        c.access(0, false);
        // Address 0 maps to bank 0 under distributed sets.
        let bank = 0usize;
        assert_eq!(c.stats().total_hops, c.layout().hops_to(bank) as u64);
        assert_eq!(c.stats().bank_accesses[bank], 1);
    }

    #[test]
    fn mean_hit_latency_tracks_layout_mean() {
        // Uniform traffic under distributed sets -> mean hit latency ~=
        // layout mean access latency.
        let mut c = NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        for i in 0..60_000u64 {
            c.access((i % 30_000) * 64, false);
        }
        let measured = c.stats().mean_hit_cycles();
        let expected = c.layout().mean_access_cycles();
        assert!(
            (measured - expected).abs() < 1.0,
            "measured {measured} vs layout {expected}"
        );
    }
}
