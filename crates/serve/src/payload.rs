//! Job payloads: the kind-specific spec object inside a `submit`
//! request, normalized so the journal, the dedup hash, and the run
//! ledger all agree on one canonical form.
//!
//! A sweep payload hashes exactly like the equivalent `rmt3d sweep`
//! invocation (the [`rmt3d_obs::spec_hash`] of the expanded job
//! canonicals), and a campaign payload hashes like `rmt3d campaign`
//! (the hash of the campaign's canonical string) — so a server run in
//! the ledger carries the same spec hash the one-shot CLI would have
//! registered, and a warm client submission dedups against the cache
//! the CLI populated.

use crate::proto::{json_str, write_json_str};
use rmt3d::{ProcessorModel, RunScale};
use rmt3d_campaign::{CampaignSpec, DEFAULT_BENCHMARKS};
use rmt3d_rmt::{EccConfig, FaultSite};
use rmt3d_sweep::SweepSpec;
use rmt3d_telemetry::json::JsonValue;
use rmt3d_workload::Benchmark;

/// A validated, normalized job payload.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// A design-space sweep over `models × benchmarks`.
    Sweep {
        /// Processor organizations to sweep.
        models: Vec<ProcessorModel>,
        /// Benchmarks to sweep.
        benchmarks: Vec<Benchmark>,
        /// Instructions per job (warmup derives as a tenth, matching
        /// the `rmt3d sweep` CLI).
        instructions: u64,
    },
    /// A randomized fault-injection campaign.
    Campaign {
        /// Fault sites to strike.
        sites: Vec<FaultSite>,
        /// Benchmarks to inject into.
        benchmarks: Vec<Benchmark>,
        /// Faults per (site × benchmark) cell.
        faults_per_site: usize,
        /// Grid seed.
        seed: u64,
        /// Instructions per trial.
        instructions: u64,
    },
}

fn parse_names<T: Copy>(
    v: Option<&JsonValue>,
    all: &[T],
    parse: impl Fn(&str) -> Option<T>,
    what: &str,
) -> Result<Vec<T>, String> {
    match v {
        None => Ok(all.to_vec()),
        Some(JsonValue::Str(s)) if s == "all" => Ok(all.to_vec()),
        Some(JsonValue::Arr(items)) => {
            if items.is_empty() {
                return Err(format!("\"{what}s\" must not be empty"));
            }
            items
                .iter()
                .map(|item| {
                    let name = item
                        .as_str()
                        .ok_or_else(|| format!("\"{what}s\" entries must be strings"))?;
                    parse(name).ok_or_else(|| format!("unknown {what}: {name}"))
                })
                .collect()
        }
        Some(_) => Err(format!("\"{what}s\" must be an array of names or \"all\"")),
    }
}

fn parse_u64(v: Option<&JsonValue>, default: u64, what: &str) -> Result<u64, String> {
    match v {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| format!("\"{what}\" must be a non-negative integer")),
    }
}

impl JobPayload {
    /// Parses and validates a submit spec object for `kind`.
    ///
    /// # Errors
    ///
    /// Returns a structured message for unknown names, ill-typed
    /// fields, or an invalid campaign grid.
    pub fn parse(kind: &str, spec: &JsonValue) -> Result<JobPayload, String> {
        match kind {
            "sweep" => {
                let models = parse_names(
                    spec.get("models"),
                    &ProcessorModel::ALL,
                    |s| s.parse().ok(),
                    "model",
                )?;
                let benchmarks = parse_names(
                    spec.get("benchmarks"),
                    &Benchmark::ALL,
                    |s| s.parse().ok(),
                    "benchmark",
                )?;
                let instructions = parse_u64(spec.get("instructions"), 250_000, "instructions")?;
                if instructions == 0 {
                    return Err("\"instructions\" must be at least 1".to_string());
                }
                Ok(JobPayload::Sweep {
                    models,
                    benchmarks,
                    instructions,
                })
            }
            "campaign" => {
                let sites = parse_names(
                    spec.get("sites"),
                    &FaultSite::ALL,
                    |s| FaultSite::parse(s).ok(),
                    "site",
                )?;
                let benchmarks = match spec.get("benchmarks") {
                    None => DEFAULT_BENCHMARKS.to_vec(),
                    some => parse_names(some, &Benchmark::ALL, |s| s.parse().ok(), "benchmark")?,
                };
                let faults_per_site =
                    parse_u64(spec.get("faults_per_site"), 40, "faults_per_site")? as usize;
                let seed = parse_u64(spec.get("seed"), 42, "seed")?;
                let instructions = parse_u64(spec.get("instructions"), 20_000, "instructions")?;
                let payload = JobPayload::Campaign {
                    sites,
                    benchmarks,
                    faults_per_site,
                    seed,
                    instructions,
                };
                // Surface grid-validation errors at submit time, not
                // at execution time.
                if let JobPayload::Campaign { .. } = &payload {
                    payload.campaign_spec().validate()?;
                }
                Ok(payload)
            }
            other => Err(format!("unknown job kind {other:?}")),
        }
    }

    /// `"sweep"` or `"campaign"`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobPayload::Sweep { .. } => "sweep",
            JobPayload::Campaign { .. } => "campaign",
        }
    }

    /// The normalized spec object as one JSON line, with every default
    /// made explicit — this exact text persists in the journal and
    /// round-trips through [`JobPayload::parse`] on replay.
    pub fn spec_json(&self) -> String {
        fn names(out: &mut String, key: &str, items: &[String]) {
            out.push_str(&json_str(key));
            out.push_str(":[");
            for (i, name) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(out, name);
            }
            out.push(']');
        }
        let mut out = String::from("{");
        match self {
            JobPayload::Sweep {
                models,
                benchmarks,
                instructions,
            } => {
                names(
                    &mut out,
                    "models",
                    &models
                        .iter()
                        .map(|m| m.name().to_string())
                        .collect::<Vec<_>>(),
                );
                out.push(',');
                names(
                    &mut out,
                    "benchmarks",
                    &benchmarks
                        .iter()
                        .map(|b| b.name().to_string())
                        .collect::<Vec<_>>(),
                );
                out.push_str(&format!(",\"instructions\":{instructions}"));
            }
            JobPayload::Campaign {
                sites,
                benchmarks,
                faults_per_site,
                seed,
                instructions,
            } => {
                names(
                    &mut out,
                    "sites",
                    &sites
                        .iter()
                        .map(|s| s.name().to_string())
                        .collect::<Vec<_>>(),
                );
                out.push(',');
                names(
                    &mut out,
                    "benchmarks",
                    &benchmarks
                        .iter()
                        .map(|b| b.name().to_string())
                        .collect::<Vec<_>>(),
                );
                out.push_str(&format!(
                    ",\"faults_per_site\":{faults_per_site},\"seed\":{seed},\"instructions\":{instructions}"
                ));
            }
        }
        out.push('}');
        out
    }

    /// The content hash identifying this spec for dedup and the run
    /// ledger; matches what the equivalent one-shot CLI run registers.
    pub fn spec_hash(&self) -> u64 {
        match self {
            JobPayload::Sweep { .. } => {
                let canonicals: Vec<String> = self
                    .sweep_spec()
                    .expand()
                    .iter()
                    .map(|j| j.canonical())
                    .collect();
                rmt3d_obs::spec_hash(canonicals.iter().map(String::as_str))
            }
            JobPayload::Campaign {
                sites,
                benchmarks,
                faults_per_site,
                seed,
                instructions,
            } => {
                // Same canonical format as the `rmt3d campaign` CLI.
                let canonical = format!(
                    "sites={}|benchmarks={}|faults={}|seed={}|instructions={}|ecc_sabotage=none",
                    sites.iter().map(|s| s.name()).collect::<Vec<_>>().join(","),
                    benchmarks
                        .iter()
                        .map(|b| b.name())
                        .collect::<Vec<_>>()
                        .join(","),
                    faults_per_site,
                    seed,
                    instructions,
                );
                rmt3d_obs::spec_hash(std::iter::once(canonical.as_str()))
            }
        }
    }

    /// Number of pool items (sweep jobs or campaign trials).
    pub fn total_jobs(&self) -> u64 {
        match self {
            JobPayload::Sweep {
                models, benchmarks, ..
            } => (models.len() * benchmarks.len()) as u64,
            JobPayload::Campaign { .. } => self.campaign_spec().total_trials() as u64,
        }
    }

    /// One-line human summary for daemon logs.
    pub fn summary(&self) -> String {
        match self {
            JobPayload::Sweep {
                models,
                benchmarks,
                instructions,
            } => format!(
                "sweep {} models x {} benchmarks @ {instructions} instructions",
                models.len(),
                benchmarks.len()
            ),
            JobPayload::Campaign {
                sites,
                benchmarks,
                faults_per_site,
                instructions,
                ..
            } => format!(
                "campaign {} sites x {} benchmarks x {faults_per_site} faults @ {instructions} instructions",
                sites.len(),
                benchmarks.len()
            ),
        }
    }

    /// Ledger config key-value pairs, mirroring the CLI manifests.
    pub fn config(&self) -> Vec<(String, String)> {
        match self {
            JobPayload::Sweep {
                models,
                benchmarks,
                instructions,
            } => vec![
                (
                    "models".to_string(),
                    models
                        .iter()
                        .map(|m| m.name())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
                (
                    "benchmarks".to_string(),
                    benchmarks
                        .iter()
                        .map(|b| b.name())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
                ("instructions".to_string(), instructions.to_string()),
            ],
            JobPayload::Campaign {
                sites,
                benchmarks,
                faults_per_site,
                seed,
                instructions,
            } => vec![
                (
                    "sites".to_string(),
                    sites.iter().map(|s| s.name()).collect::<Vec<_>>().join(","),
                ),
                (
                    "benchmarks".to_string(),
                    benchmarks
                        .iter()
                        .map(|b| b.name())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
                ("faults_per_site".to_string(), faults_per_site.to_string()),
                ("seed".to_string(), seed.to_string()),
                ("instructions".to_string(), instructions.to_string()),
            ],
        }
    }

    /// The expanded sweep spec (panics on a campaign payload).
    pub fn sweep_spec(&self) -> SweepSpec {
        let JobPayload::Sweep {
            models,
            benchmarks,
            instructions,
        } = self
        else {
            panic!("sweep_spec on a campaign payload");
        };
        SweepSpec::new(
            models,
            benchmarks,
            RunScale {
                warmup_instructions: instructions / 10,
                instructions: *instructions,
                thermal_grid: 50,
            },
        )
    }

    /// The campaign grid (panics on a sweep payload).
    pub fn campaign_spec(&self) -> CampaignSpec {
        let JobPayload::Campaign {
            sites,
            benchmarks,
            faults_per_site,
            seed,
            instructions,
        } = self
        else {
            panic!("campaign_spec on a sweep payload");
        };
        CampaignSpec {
            sites: sites.clone(),
            benchmarks: benchmarks.clone(),
            faults_per_cell: *faults_per_site,
            seed: *seed,
            instructions: *instructions,
            ecc: EccConfig::paper(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_telemetry::json::parse;

    fn sweep(spec: &str) -> Result<JobPayload, String> {
        JobPayload::parse("sweep", &parse(spec).unwrap())
    }

    #[test]
    fn sweep_payload_normalizes_and_round_trips() {
        let p = sweep(r#"{"models":["2d-a"],"benchmarks":["gzip","mcf"],"instructions":15000}"#)
            .unwrap();
        assert_eq!(p.total_jobs(), 2);
        let normalized = p.spec_json();
        let back = JobPayload::parse("sweep", &parse(&normalized).unwrap()).unwrap();
        assert_eq!(back.spec_json(), normalized, "journal round-trip");
        assert_eq!(back.spec_hash(), p.spec_hash());
    }

    #[test]
    fn sweep_hash_matches_the_cli_derivation() {
        let p = sweep(r#"{"models":["2d-a"],"benchmarks":["gzip"],"instructions":15000}"#).unwrap();
        let spec = p.sweep_spec();
        let canonicals: Vec<String> = spec.expand().iter().map(|j| j.canonical()).collect();
        assert_eq!(
            p.spec_hash(),
            rmt3d_obs::spec_hash(canonicals.iter().map(String::as_str))
        );
        assert_eq!(spec.scale.warmup_instructions, 1_500);
    }

    #[test]
    fn defaults_and_all_select_the_whole_axis() {
        let p = sweep("{}").unwrap();
        assert_eq!(
            p.total_jobs(),
            (ProcessorModel::ALL.len() * Benchmark::ALL.len()) as u64
        );
        let q = sweep(r#"{"models":"all","benchmarks":"all"}"#).unwrap();
        assert_eq!(q.total_jobs(), p.total_jobs());
        let c = JobPayload::parse("campaign", &parse("{}").unwrap()).unwrap();
        assert!(matches!(&c, JobPayload::Campaign { benchmarks, .. }
            if benchmarks == &DEFAULT_BENCHMARKS.to_vec()));
        assert!(c.total_jobs() > 0);
    }

    #[test]
    fn ill_typed_payloads_are_rejected() {
        for bad in [
            r#"{"models":["warp-drive"]}"#,
            r#"{"models":[]}"#,
            r#"{"models":[42]}"#,
            r#"{"models":{"a":1}}"#,
            r#"{"instructions":"many"}"#,
            r#"{"instructions":0}"#,
        ] {
            assert!(sweep(bad).is_err(), "accepted {bad}");
        }
        assert!(
            JobPayload::parse("campaign", &parse(r#"{"sites":["reactor_core"]}"#).unwrap())
                .is_err()
        );
        assert!(JobPayload::parse("thermal", &parse("{}").unwrap()).is_err());
    }
}
