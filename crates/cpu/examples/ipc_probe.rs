//! Diagnostic: steady-state IPC / MPKI / L2-miss calibration table for
//! all 19 benchmark profiles (used to tune workload::spec2k; compare
//! against Fig. 6).
use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_workload::{Benchmark, TraceGenerator};

fn main() {
    for b in Benchmark::ALL {
        let mut c = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        c.prefill_caches();
        c.run_instructions(100_000);
        c.reset_stats();
        c.run_instructions(300_000);
        let a = c.activity();
        println!(
            "{:10} ipc={:.3} mpki={:.2} l2m/10k={:.2} l2hit={:.1}",
            b.name(),
            a.ipc(),
            a.mispredicts_per_kilo_instruction(),
            c.caches().stats().l2_misses_per_10k(),
            c.caches().l2_mean_hit_cycles()
        );
    }
}
