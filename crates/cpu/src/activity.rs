//! Per-unit activity counters consumed by the Wattch-lite power model.
//!
//! Wattch computes dynamic power as `activity x energy-per-access` per
//! structure, with aggressive (cc3) clock gating for idle units. The core
//! models maintain these counters; `rmt3d-power` turns them into watts.

/// Applies a callback macro to every counter field exactly once, so
/// field-wise operations ([`ActivityCounters::merge`],
/// [`ActivityCounters::delta_since`]) cannot drift out of sync with the
/// struct definition when counters are added.
macro_rules! for_each_counter {
    ($apply:ident!($($args:tt)*)) => {
        $apply!(
            ($($args)*),
            cycles,
            fetched,
            dispatched,
            issued,
            committed,
            int_alu_ops,
            int_mul_ops,
            fp_alu_ops,
            fp_mul_ops,
            bpred_accesses,
            icache_accesses,
            dcache_accesses,
            lsq_accesses,
            regfile_reads,
            regfile_writes,
            bypass_transfers,
            commit_stall_cycles,
            branch_mispredicts
        )
    };
}

/// Activity counts accumulated by a core over a simulation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions dispatched (rename + ROB write).
    pub dispatched: u64,
    /// Instructions issued (IQ wakeup/select + regfile read).
    pub issued: u64,
    /// Instructions committed (ROB read + regfile write).
    pub committed: u64,
    /// Integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Integer multiplier operations.
    pub int_mul_ops: u64,
    /// FP adder operations.
    pub fp_alu_ops: u64,
    /// FP multiplier operations.
    pub fp_mul_ops: u64,
    /// Branch predictor lookups/updates.
    pub bpred_accesses: u64,
    /// L1 I-cache accesses (one per fetched line).
    pub icache_accesses: u64,
    /// L1 D-cache accesses (loads at issue, stores at commit).
    pub dcache_accesses: u64,
    /// Load/store queue insertions + searches.
    pub lsq_accesses: u64,
    /// Architectural register-file reads.
    pub regfile_reads: u64,
    /// Architectural register-file writes.
    pub regfile_writes: u64,
    /// Result-bus / bypass transfers.
    pub bypass_transfers: u64,
    /// Cycles in which the commit stage was stalled by external
    /// back-pressure (RVQ/StB full) — the RMT performance-coupling
    /// mechanism.
    pub commit_stall_cycles: u64,
    /// Branch mispredictions observed at fetch.
    pub branch_mispredicts: u64,
}

impl ActivityCounters {
    /// Committed instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per 1000 committed instructions.
    pub fn mispredicts_per_kilo_instruction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Per-cycle activity factor of a unit given its access count
    /// (clamped to 1.0; feeds cc3 gating in the power model).
    pub fn activity_factor(&self, accesses: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (accesses as f64 / self.cycles as f64).min(1.0)
        }
    }

    /// Element-wise accumulation of another window's counters.
    pub fn merge(&mut self, other: &ActivityCounters) {
        macro_rules! add {
            (($self:ident, $other:ident), $($field:ident),*) => {
                $($self.$field += $other.$field;)*
            };
        }
        for_each_counter!(add!(self, other));
    }

    /// Counters accumulated since the `start` snapshot (field-wise
    /// `self - start`): the measurement-window delta used after warm-up.
    ///
    /// `start` must be an earlier snapshot of the same accumulating
    /// counters; each field underflow-panics (debug) otherwise.
    #[must_use]
    pub fn delta_since(&self, start: &ActivityCounters) -> ActivityCounters {
        let mut delta = *self;
        macro_rules! sub {
            (($delta:ident, $start:ident), $($field:ident),*) => {
                $($delta.$field -= $start.$field;)*
            };
        }
        for_each_counter!(sub!(delta, start));
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let a = ActivityCounters {
            cycles: 1000,
            committed: 1200,
            branch_mispredicts: 6,
            ..Default::default()
        };
        assert!((a.ipc() - 1.2).abs() < 1e-12);
        assert!((a.mispredicts_per_kilo_instruction() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let a = ActivityCounters::default();
        assert_eq!(a.ipc(), 0.0);
        assert_eq!(a.activity_factor(10), 0.0);
        assert_eq!(a.mispredicts_per_kilo_instruction(), 0.0);
    }

    #[test]
    fn activity_factor_clamps() {
        let a = ActivityCounters {
            cycles: 100,
            ..Default::default()
        };
        assert_eq!(a.activity_factor(250), 1.0);
        assert!((a.activity_factor(50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounters {
            cycles: 10,
            committed: 5,
            ..Default::default()
        };
        let b = ActivityCounters {
            cycles: 20,
            committed: 15,
            int_alu_ops: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.committed, 20);
        assert_eq!(a.int_alu_ops, 7);
    }

    #[test]
    fn delta_since_inverts_merge() {
        let start = ActivityCounters {
            cycles: 100,
            committed: 80,
            dcache_accesses: 30,
            branch_mispredicts: 2,
            ..Default::default()
        };
        let window = ActivityCounters {
            cycles: 55,
            committed: 40,
            dcache_accesses: 12,
            regfile_writes: 9,
            ..Default::default()
        };
        let mut acc = start;
        acc.merge(&window);
        assert_eq!(acc.delta_since(&start), window);
        // Zero-width window.
        assert_eq!(acc.delta_since(&acc), ActivityCounters::default());
    }
}
