//! Fig. 1 summary box — the headline RMT results the checker design
//! inherits from \[19\]: the trailer runs at a fraction of the leader's
//! frequency, the inter-core interconnect consumes under 2 W, RMT's
//! power overhead is modest, and fault coverage is complete under the
//! §2 fault model.

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, PowerMapConfig};
use crate::simulate::{simulate, SimConfig};
use rmt3d_power::CheckerPowerModel;
use rmt3d_rmt::{EccConfig, RmtConfig, RmtSystem};
use rmt3d_units::Watts;
use rmt3d_workload::{Benchmark, TraceGenerator};

/// The Fig. 1 summary numbers, measured on this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmtSummary {
    /// Mean checker frequency as a fraction of the leader's.
    pub checker_frequency_fraction: f64,
    /// Leading-core performance loss from RMT coupling.
    pub leader_slowdown: f64,
    /// Inter-core interconnect power (wires + d2d vias).
    pub interconnect_power: Watts,
    /// RMT power overhead: (checker under DFS + buffers + wires) over
    /// the baseline chip power.
    pub power_overhead: f64,
    /// Injected faults that were detected and recovered.
    pub faults_recovered: u64,
    /// Injected (unprotected-site) faults that escaped recovery.
    pub faults_unrecoverable: u64,
}

impl RmtSummary {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        format!(
            "Fig.1 summary (measured)\n\
             checker mean frequency: {:.2} of leader\n\
             leader slowdown: {:.1}%\n\
             inter-core interconnect power: {:.2} W\n\
             RMT power overhead: {:.1}%\n\
             faults recovered: {} (unrecoverable: {})\n",
            self.checker_frequency_fraction,
            100.0 * self.leader_slowdown,
            self.interconnect_power.0,
            100.0 * self.power_overhead,
            self.faults_recovered,
            self.faults_unrecoverable
        )
    }
}

/// Measures the Fig. 1 summary on the 3d-2a system.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> RmtSummary {
    let mut freq = 0.0;
    let mut slow = 0.0;
    let mut wire_power = Watts::ZERO;
    let mut overhead = 0.0;
    for &b in benchmarks {
        let base = simulate(&SimConfig::nominal(ProcessorModel::TwoDA, scale), b);
        let rmt = simulate(&SimConfig::nominal(ProcessorModel::ThreeD2A, scale), b);
        freq += rmt.mean_checker_fraction;
        // Work rates at equal clocks: IPC ratio.
        slow += (1.0 - rmt.ipc() / base.ipc()).max(0.0);

        // Power: baseline chip vs reliable chip with a DFS-throttled 7 W
        // checker.
        let base_chip = build_power_map(
            &base,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let mut cfg = PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w());
        cfg.throttle_checker_by_dfs = true;
        let rmt_chip = build_power_map(&rmt, &cfg);
        let wires = rmt_chip
            .wires
            .intercore_power(&rmt3d_interconnect::WireModel::paper());
        wire_power += wires;
        // The RMT mechanism's own cost: checker + buffers + inter-core
        // wires. (The 9 MB of extra cache is a capacity upgrade, not an
        // RMT cost, and is excluded as in [19].)
        let rmt_cost = rmt_chip.checker + Watts(0.4) + wires;
        overhead += rmt_cost.0 / base_chip.total().0;
    }
    let n = benchmarks.len() as f64;

    // Fault-injection coverage on one benchmark.
    let leader = rmt3d_cpu::OooCore::new(
        rmt3d_cpu::CoreConfig::leading_ev7_like(),
        TraceGenerator::new(Benchmark::Gzip.profile()),
        rmt3d_cache::CacheHierarchy::new(
            ProcessorModel::ThreeD2A.nuca_layout(),
            rmt3d_cache::NucaPolicy::DistributedSets,
        ),
    );
    let mut sys = RmtSystem::new(leader, RmtConfig::paper()).with_fault_injection(
        1234,
        5e-4,
        EccConfig::paper(),
    );
    sys.prefill_caches();
    sys.run_instructions(scale.instructions.min(100_000));
    sys.drain();

    RmtSummary {
        checker_frequency_fraction: freq / n,
        leader_slowdown: slow / n,
        interconnect_power: wire_power / n,
        power_overhead: overhead / n,
        faults_recovered: sys.stats().recoveries - sys.stats().unrecoverable,
        faults_unrecoverable: sys.stats().unrecoverable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_figure_1_claims() {
        let s = run(&[Benchmark::Gzip, Benchmark::Twolf], RunScale::quick());
        // Trailer runs well below leader frequency (paper: ~45-63%).
        assert!(
            (0.3..0.8).contains(&s.checker_frequency_fraction),
            "checker fraction {}",
            s.checker_frequency_fraction
        );
        // "No performance loss for the leading core" (allow a few %).
        assert!(s.leader_slowdown < 0.06, "slowdown {}", s.leader_slowdown);
        // "Inter-core interconnects typically consume less than 2 W."
        assert!(
            s.interconnect_power.0 < 2.5,
            "interconnect {}",
            s.interconnect_power
        );
        // "RMT can impose a power overhead of less than 10%": ours uses
        // the pessimistic 7 W checker floor, so allow up to 20%.
        assert!(
            (0.0..0.20).contains(&s.power_overhead),
            "power overhead {}",
            s.power_overhead
        );
        // Every injected fault at an unprotected site is recovered.
        assert_eq!(s.faults_unrecoverable, 0);
        assert!(s.to_table().contains("checker mean frequency"));
    }
}
