//! Reusable SIGKILL scheduling for real-binary crash tests.
//!
//! A [`KillSchedule`] draws seeded random kill delays from a
//! [`SplitMix64`] stream as *fractions of the measured uninterrupted
//! runtime*, so the same schedules keep landing in the intended phase
//! (startup, mid-trial, late) no matter how fast the simulator or the
//! host machine gets. The window escalates on every attempt so a
//! victim that keeps getting killed early is guaranteed to eventually
//! outrun the killer and finish. [`kill_after`] does the dirty work:
//! poll the child until the delay elapses, then SIGKILL it
//! (`Child::kill` sends SIGKILL on unix — no graceful shutdown, no
//! atexit handlers, exactly the crash the journal must survive).

use rmt3d_workload::SplitMix64;
use std::process::{Child, ExitStatus};
use std::time::{Duration, Instant};

/// One seeded kill regime for a campaign under test.
pub struct KillSchedule {
    /// Names the work directory and failure messages.
    pub name: &'static str,
    /// Seed of the delay stream (the "seeded kill schedule" of the
    /// acceptance criteria: re-running reproduces the same kills).
    pub seed: u64,
    /// First-attempt delay window as per-mille of the golden runtime.
    pub min_permille: u64,
    pub max_permille: u64,
}

/// Three regimes aimed at different crash landings: almost immediately
/// (startup, header and first journal writes), mid-trial at full tilt,
/// and late (between aggregation checkpoints, report imminent). Upper
/// bounds stay below 1000‰ so the first life is always killed — the
/// test requires every schedule to land at least one kill.
pub const SCHEDULES: [KillSchedule; 3] = [
    KillSchedule {
        name: "rapid-fire",
        seed: 0xDEAD,
        min_permille: 20,
        max_permille: 150,
    },
    KillSchedule {
        name: "mid-trial",
        seed: 0xBEEF,
        min_permille: 200,
        max_permille: 500,
    },
    KillSchedule {
        name: "between-checkpoints",
        seed: 0xFEED,
        min_permille: 400,
        max_permille: 700,
    },
];

impl KillSchedule {
    /// The delay before kill `attempt` (0-based): drawn uniformly from
    /// the window scaled to `golden` (the uninterrupted runtime), then
    /// doubled every four attempts so progress per life grows until
    /// the campaign finishes.
    pub fn delay(&self, rng: &mut SplitMix64, attempt: u64, golden: Duration) -> Duration {
        let scale = 1 << (attempt / 4).min(6);
        let permille =
            self.min_permille * scale + rng.below((self.max_permille - self.min_permille) * scale);
        // Floor of 5 ms: a kill cannot land before the process exists.
        golden
            .mul_f64(permille as f64 / 1000.0)
            .max(Duration::from_millis(5))
    }
}

/// Polls `child` until `delay` elapses, then SIGKILLs it. Returns
/// `None` when the child was killed, `Some(status)` when it exited on
/// its own first.
pub fn kill_after(child: &mut Child, delay: Duration) -> Option<ExitStatus> {
    let deadline = Instant::now() + delay;
    loop {
        if let Some(status) = child.try_wait().expect("child waitable") {
            return Some(status);
        }
        if Instant::now() >= deadline {
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("killed child reaped");
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}
