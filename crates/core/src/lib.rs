//! `rmt3d`: a simulation platform reproducing *"Leveraging 3D Technology
//! for Improved Reliability"* (Madan & Balasubramonian, MICRO 2007).
//!
//! The paper proposes stacking an in-order *checker core* on a second
//! die above an out-of-order leading core ("snap-on" reliability) and
//! evaluates the thermal, performance, interconnect and technology
//! design space. This crate assembles the substrate crates —
//! workload synthesis, cycle-level cores, NUCA caches, RMT coupling,
//! Wattch-lite power, HotSpot-lite thermals, interconnect and
//! reliability models — into the paper's four processor models and an
//! experiment harness that regenerates every table and figure
//! (see `EXPERIMENTS.md` at the repository root).
//!
//! # Examples
//!
//! ```no_run
//! use rmt3d::{simulate, ProcessorModel, RunScale, SimConfig};
//! use rmt3d_workload::Benchmark;
//!
//! let cfg = SimConfig::nominal(ProcessorModel::ThreeD2A, RunScale::quick());
//! let result = simulate(&cfg, Benchmark::Mcf);
//! println!("mcf on 3d-2a: IPC {:.2}, checker at {:.2} f",
//!     result.ipc(), result.mean_checker_fraction);
//! ```

pub mod experiments;
mod model;
mod powermap;
pub mod report;
mod simulate;

pub use model::{L2Policy, ParseModelError, ProcessorModel, RunScale};
pub use powermap::{build_power_map, override_checker_power, ChipPower, PowerMapConfig};
pub use simulate::{simulate, simulate_traced, PerfResult, SerialSimulator, SimConfig, Simulator};

pub use rmt3d_telemetry as telemetry;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use rmt3d_cache as cache;
pub use rmt3d_cpu as cpu;
pub use rmt3d_floorplan as floorplan;
pub use rmt3d_interconnect as interconnect;
pub use rmt3d_power as power;
pub use rmt3d_reliability as reliability;
pub use rmt3d_rmt as rmt;
pub use rmt3d_thermal as thermal;
pub use rmt3d_units as units;
pub use rmt3d_workload as workload;
