//! Cycle-level core models for the `rmt3d` simulator: the out-of-order
//! leading core and the in-order trailing checker core.
//!
//! This crate plays the role SimpleScalar-3.0 plays in the paper (§3.1):
//! it executes the synthetic SPEC2k-like traces of `rmt3d-workload`
//! through a Table 1-configured out-of-order pipeline ([`OooCore`]) and
//! provides the power-efficient in-order checker ([`InOrderCore`]) that
//! re-executes the committed stream with perfect prediction and register
//! value prediction (§2.1). The RMT coupling (queues, slack, DFS, fault
//! injection) lives in `rmt3d-rmt`.
//!
//! # Examples
//!
//! ```
//! use rmt3d_cpu::{CoreConfig, OooCore};
//! use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
//! use rmt3d_workload::{Benchmark, TraceGenerator};
//!
//! let mut core = OooCore::new(
//!     CoreConfig::leading_ev7_like(),
//!     TraceGenerator::new(Benchmark::Mcf.profile()),
//!     CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
//! );
//! core.run_instructions(10_000);
//! println!("mcf IPC = {:.2}", core.activity().ipc());
//! ```

mod activity;
mod bpred;
mod commit;
mod config;
mod inorder;
mod ooo;
mod refexec;

pub use activity::ActivityCounters;
pub use bpred::CombinedPredictor;
pub use commit::CommittedOp;
pub use config::{CoreConfig, TrailerConfig};
pub use inorder::{CheckOutcome, InOrderCore, Verification};
pub use ooo::{load_memory_value, OooCore};
pub use refexec::ReferenceExecutor;
