//! Property tests over the core pipelines: structural invariants must
//! hold for every benchmark profile and random configuration tweak.
//!
//! Cases come from a seeded [`SplitMix64`] stream for bit-for-bit
//! reproducibility without an external property-test dependency.

use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CheckOutcome, CoreConfig, InOrderCore, OooCore, TrailerConfig};
use rmt3d_workload::{Benchmark, SplitMix64, TraceGenerator};
use std::collections::VecDeque;

fn any_benchmark(rng: &mut SplitMix64) -> Benchmark {
    Benchmark::ALL[rng.below_usize(19)]
}

#[test]
fn commits_are_in_order_and_complete() {
    let mut rng = SplitMix64::new(0x0de2);
    for _ in 0..24 {
        let b = any_benchmark(&mut rng);
        let cycles = rng.range_u64(500, 3000);
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut out = Vec::new();
        for _ in 0..cycles {
            core.step_cycle(&mut out);
        }
        for w in out.windows(2) {
            assert_eq!(w[1].op.seq, w[0].op.seq + 1);
        }
        let a = core.activity();
        assert!(a.committed <= a.dispatched);
        assert!(a.dispatched <= a.fetched);
        assert!(a.issued <= a.dispatched);
    }
}

#[test]
fn narrow_cores_are_never_faster() {
    let mut rng = SplitMix64::new(0xa22);
    for _ in 0..6 {
        let b = any_benchmark(&mut rng);
        let run = |cfg: CoreConfig| {
            let mut core = OooCore::new(
                cfg,
                TraceGenerator::new(b.profile()),
                CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
            );
            core.prefill_caches();
            core.run_instructions(15_000);
            core.activity().ipc()
        };
        let wide = run(CoreConfig::leading_ev7_like());
        let narrow = run(CoreConfig::checker_as_leader());
        assert!(narrow <= wide * 1.02, "narrow {narrow} vs wide {wide}");
    }
}

#[test]
fn checker_verifies_any_committed_stream_clean() {
    let mut rng = SplitMix64::new(0xc4ec);
    for _ in 0..12 {
        let b = any_benchmark(&mut rng);
        let n = rng.range_u64(500, 3000) as usize;
        let ports = rng.range_u64(1, 4) as u32;
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut stream = Vec::new();
        while stream.len() < n {
            core.step_cycle(&mut stream);
        }
        stream.truncate(n);

        let mut cfg = TrailerConfig::checker();
        cfg.verify_ports = ports;
        let mut trailer = InOrderCore::new(cfg);
        let mut q: VecDeque<_> = stream.into_iter().collect();
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < n {
            trailer.step_cycle(&mut q, &mut out);
            guard += 1;
            assert!(guard < 50 * n + 1000, "trailer wedged");
        }
        // Fault-free stream: every verification passes, in order.
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.outcome, CheckOutcome::Ok, "at {}", i);
            assert_eq!(v.seq, i as u64);
        }
        // Port count bounds throughput.
        assert!(trailer.cycle() + 64 >= n as u64 / ports as u64);
    }
}

#[test]
fn single_bit_flip_is_always_detected() {
    let mut rng = SplitMix64::new(0xf11b);
    for _ in 0..24 {
        let b = any_benchmark(&mut rng);
        let victim_frac = rng.range_f64(0.1, 0.9);
        let bit = rng.below(64) as u8;
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut stream = Vec::new();
        while stream.len() < 1200 {
            core.step_cycle(&mut stream);
        }
        stream.truncate(1200);
        // Flip a result bit on the first register-writing op past the
        // chosen point.
        let start = (victim_frac * stream.len() as f64) as usize;
        let Some(victim) = (start..stream.len()).find(|&i| stream[i].op.dest.is_some()) else {
            continue;
        };
        stream[victim].result ^= 1u64 << bit;

        let mut trailer = InOrderCore::new(TrailerConfig::checker());
        let mut q: VecDeque<_> = stream.into_iter().collect();
        let mut out = Vec::new();
        while out.len() < 1200 {
            trailer.step_cycle(&mut q, &mut out);
        }
        assert!(
            out[victim].outcome != CheckOutcome::Ok,
            "flip of bit {bit} at op {victim} must be detected"
        );
        assert!(
            out[..victim].iter().all(|v| v.outcome == CheckOutcome::Ok),
            "no false positives before the fault"
        );
    }
}
