//! Workload profile parameters.
//!
//! A [`WorkloadProfile`] is the complete statistical description of a
//! synthetic program: instruction mix, dependence distances, branch
//! behaviour and memory working sets. The 19 SPEC2k-like profiles in
//! [`crate::Benchmark`] are instances of this type; users can also build
//! custom profiles for their own studies.

/// Fractions of each op class in the dynamic instruction stream.
///
/// The seven fractions must be non-negative and sum to 1 (validated by
/// [`InstructionMix::new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Simple integer ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// FP adds.
    pub fp_alu: f64,
    /// FP multiplies.
    pub fp_mul: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Branches.
    pub branch: f64,
}

impl InstructionMix {
    /// Validates and creates a mix.
    ///
    /// # Errors
    ///
    /// Returns an error message when a fraction is negative or the sum is
    /// not 1 within 1e-6.
    pub fn new(
        int_alu: f64,
        int_mul: f64,
        fp_alu: f64,
        fp_mul: f64,
        load: f64,
        store: f64,
        branch: f64,
    ) -> Result<InstructionMix, String> {
        let parts = [int_alu, int_mul, fp_alu, fp_mul, load, store, branch];
        if parts.iter().any(|&p| p < 0.0) {
            return Err("instruction mix fractions must be non-negative".to_string());
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("instruction mix must sum to 1, got {sum}"));
        }
        Ok(InstructionMix {
            int_alu,
            int_mul,
            fp_alu,
            fp_mul,
            load,
            store,
            branch,
        })
    }

    /// A typical integer-program mix.
    pub fn typical_int() -> InstructionMix {
        InstructionMix::new(0.42, 0.02, 0.0, 0.0, 0.26, 0.12, 0.18).expect("static mix")
    }

    /// A typical floating-point-program mix.
    pub fn typical_fp() -> InstructionMix {
        InstructionMix::new(0.22, 0.01, 0.22, 0.14, 0.26, 0.09, 0.06).expect("static mix")
    }

    /// Cumulative distribution over [`crate::OpClass::ALL`], used by the
    /// generator for sampling.
    pub(crate) fn cumulative(&self) -> [f64; 7] {
        let parts = [
            self.int_alu,
            self.int_mul,
            self.fp_alu,
            self.fp_mul,
            self.load,
            self.store,
            self.branch,
        ];
        let mut cum = [0.0; 7];
        let mut acc = 0.0;
        for (c, p) in cum.iter_mut().zip(parts) {
            acc += p;
            *c = acc;
        }
        cum[6] = 1.0 + 1e-12; // guard against FP round-off at the tail
        cum
    }

    /// Fraction of ops that are floating point.
    pub fn fp_fraction(&self) -> f64 {
        self.fp_alu + self.fp_mul
    }
}

/// Memory working-set description.
///
/// The generator draws each memory reference from one of three regions:
///
/// * a **hot** region sized to (mostly) fit in the L1 D-cache,
/// * a **warm** region sized relative to the L2 — this is the knob that
///   determines whether a program benefits from the 15 MB NUCA cache of
///   the two-die models (paper §3.3),
/// * a **streaming** region walked sequentially that never fits anywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// Hot-region size in KiB.
    pub hot_kb: u32,
    /// Warm-region size in KiB (so multi-megabyte sets stay integral).
    pub warm_kb: u32,
    /// Probability a reference hits the hot region.
    pub p_hot: f64,
    /// Probability a reference hits the warm region (the rest streams).
    pub p_warm: f64,
    /// Mean sequential-run length in cache lines (spatial locality).
    pub spatial_run: u32,
}

impl MemoryProfile {
    /// Validates and creates a memory profile.
    ///
    /// # Errors
    ///
    /// Returns an error message when probabilities are out of range or
    /// region sizes are zero.
    pub fn new(
        hot_kb: u32,
        warm_kb: u32,
        p_hot: f64,
        p_warm: f64,
        spatial_run: u32,
    ) -> Result<MemoryProfile, String> {
        if !(0.0..=1.0).contains(&p_hot) || !(0.0..=1.0).contains(&p_warm) {
            return Err("probabilities must be in [0,1]".to_string());
        }
        if p_hot + p_warm > 1.0 + 1e-9 {
            return Err("p_hot + p_warm must not exceed 1".to_string());
        }
        if hot_kb == 0 || warm_kb == 0 {
            return Err("region sizes must be positive".to_string());
        }
        if spatial_run == 0 {
            return Err("spatial run must be at least 1 line".to_string());
        }
        Ok(MemoryProfile {
            hot_kb,
            warm_kb,
            p_hot,
            p_warm,
            spatial_run,
        })
    }

    /// Probability a reference goes to the streaming region.
    pub fn p_stream(&self) -> f64 {
        (1.0 - self.p_hot - self.p_warm).max(0.0)
    }
}

/// Complete statistical description of a synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Program name (e.g. `"mcf"`).
    pub name: &'static str,
    /// RNG seed; fixed per benchmark for reproducibility.
    pub seed: u64,
    /// Dynamic instruction mix.
    pub mix: InstructionMix,
    /// Mean register-dependence distance (geometric distribution). Small
    /// values mean long dependence chains and low ILP.
    pub dep_mean: f64,
    /// Number of static branch sites.
    pub static_branches: u32,
    /// Fraction of branch sites with history-predictable (periodic)
    /// behaviour; the rest are biased coins. Higher values reward the
    /// 2-level predictor.
    pub predictability: f64,
    /// Memory behaviour.
    pub memory: MemoryProfile,
}

impl WorkloadProfile {
    /// Validates the profile invariants beyond what the component
    /// constructors already guarantee.
    ///
    /// # Errors
    ///
    /// Returns an error message for non-positive dependence distance,
    /// zero branch sites, or out-of-range predictability.
    pub fn validate(&self) -> Result<(), String> {
        if self.dep_mean < 1.0 {
            return Err("dep_mean must be >= 1".to_string());
        }
        if self.static_branches == 0 {
            return Err("need at least one static branch".to_string());
        }
        if !(0.0..=1.0).contains(&self.predictability) {
            return Err("predictability must be in [0,1]".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_must_sum_to_one() {
        assert!(InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.2, 0.1, 0.1).is_err());
        assert!(InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.2, 0.1, 0.2).is_ok());
    }

    #[test]
    fn mix_rejects_negative() {
        assert!(InstructionMix::new(1.2, 0.0, 0.0, 0.0, -0.2, 0.0, 0.0).is_err());
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_one() {
        let cum = InstructionMix::typical_int().cumulative();
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(cum[6] >= 1.0);
    }

    #[test]
    fn typical_mixes_are_valid() {
        assert!(InstructionMix::typical_int().fp_fraction() < 1e-9);
        assert!(InstructionMix::typical_fp().fp_fraction() > 0.3);
    }

    #[test]
    fn memory_profile_validation() {
        assert!(MemoryProfile::new(16, 2048, 0.8, 0.3, 4).is_err()); // p>1
        assert!(MemoryProfile::new(0, 2048, 0.5, 0.3, 4).is_err()); // zero hot
        assert!(MemoryProfile::new(16, 2048, 0.5, 0.3, 0).is_err()); // zero run
        let m = MemoryProfile::new(16, 2048, 0.7, 0.25, 4).unwrap();
        assert!((m.p_stream() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn profile_validation() {
        let mut p = WorkloadProfile {
            name: "test",
            seed: 1,
            mix: InstructionMix::typical_int(),
            dep_mean: 4.0,
            static_branches: 64,
            predictability: 0.7,
            memory: MemoryProfile::new(16, 2048, 0.8, 0.15, 4).unwrap(),
        };
        assert!(p.validate().is_ok());
        p.dep_mean = 0.5;
        assert!(p.validate().is_err());
    }
}
