//! Failure minimization: greedily shrink a violating trial to the
//! smallest reproduction that still exhibits the same violation.
//!
//! A campaign violation arrives as a (benchmark, site, injection point,
//! bit, register, instruction-count) tuple buried in a 20k-instruction
//! run. Debugging wants the opposite: the shortest run and the simplest
//! fault that still fails. The shrinker walks a candidate ladder —
//! truncate the tail, move the strike earlier, zero the bit, lower the
//! register — re-running the trial for each candidate and keeping any
//! reduction that preserves the violation kind, until no candidate
//! improves (a greedy fixpoint, the same discipline proptest applies to
//! its failing cases).

use crate::trial::{run_trial, TrialResult, TrialSpec, Violation};

/// A minimized failing reproduction.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The smallest spec found that still violates.
    pub spec: TrialSpec,
    /// Its (violating) result.
    pub result: TrialResult,
    /// Candidate trials executed while shrinking.
    pub attempts: u32,
    /// Candidates that were accepted (reductions kept).
    pub accepted: u32,
}

/// Size metric, compared lexicographically: run length dominates, then
/// how late the strike lands, then fault complexity.
fn metric(s: &TrialSpec) -> (u64, u64, u8, u8) {
    (s.instructions, s.inject_at, s.bit, s.reg)
}

/// The candidate ladder: every spec strictly smaller than `s` by one
/// greedy move. Ordered most-aggressive-first so the fixpoint converges
/// in few runs.
fn candidates(s: &TrialSpec) -> Vec<TrialSpec> {
    let mut out = Vec::new();
    let mut push = |c: TrialSpec| {
        if c.validate().is_ok() && metric(&c) < metric(s) {
            out.push(c);
        }
    };
    // Truncate the tail: keep only a sliver of run past the strike.
    let tail = s.instructions - s.inject_at;
    for keep in [1, 64, tail / 4, tail / 2] {
        let mut c = *s;
        c.instructions = s.inject_at + keep.max(1);
        push(c);
    }
    // Strike earlier (the run before the strike shrinks with it).
    for at in [s.inject_at / 8, s.inject_at / 2, s.inject_at - 1] {
        let mut c = *s;
        c.inject_at = at.max(1);
        push(c);
    }
    // Simplify the fault itself.
    for bit in [0, s.bit / 2] {
        let mut c = *s;
        c.bit = bit;
        push(c);
    }
    for reg in [1, s.reg / 2] {
        let mut c = *s;
        c.reg = reg.max(1);
        push(c);
    }
    out
}

/// Minimizes a violating trial.
///
/// Runs `spec` once to learn the target violation kind, then descends
/// the candidate ladder until a fixpoint or `max_attempts` re-runs.
/// Every accepted candidate reproduces the *same* [`Violation`]
/// variant, so the minimized spec debugs the original failure, not a
/// different one found along the way.
///
/// # Errors
///
/// Returns a message when `spec` does not violate in the first place.
pub fn shrink(spec: &TrialSpec, max_attempts: u32) -> Result<Shrunk, String> {
    let result = run_trial(spec);
    let Some(target) = result.violation else {
        return Err(format!(
            "trial {} does not violate; nothing to shrink",
            spec.label()
        ));
    };
    let mut best = Shrunk {
        spec: *spec,
        result,
        attempts: 1,
        accepted: 0,
    };
    'outer: loop {
        for cand in candidates(&best.spec) {
            if best.attempts >= max_attempts {
                break 'outer;
            }
            let r = run_trial(&cand);
            best.attempts += 1;
            if r.violation == Some(target) {
                best.spec = cand;
                best.result = r;
                best.accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    Ok(best)
}

/// Re-runs a (possibly shrunk) spec and checks it still reproduces the
/// given violation — the assertion a regression fixture makes.
pub fn reproduces(spec: &TrialSpec, violation: Violation) -> bool {
    run_trial(spec).violation == Some(violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_rmt::{EccConfig, FaultSite};
    use rmt3d_workload::Benchmark;

    #[test]
    fn candidates_strictly_shrink_and_stay_valid() {
        let s = TrialSpec {
            index: 0,
            site: FaultSite::TrailerRegfile,
            benchmark: Benchmark::Gzip,
            ecc: EccConfig::none(),
            instructions: 20_000,
            inject_at: 9_000,
            bit: 33,
            reg: 17,
        };
        let cands = candidates(&s);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(metric(c) < metric(&s), "{c:?}");
            c.validate().expect("candidate valid");
            assert_eq!(c.site, s.site);
            assert_eq!(c.benchmark, s.benchmark);
        }
        // A minimal spec has no candidates left.
        let minimal = TrialSpec {
            instructions: 2,
            inject_at: 1,
            bit: 0,
            reg: 1,
            ..s
        };
        assert!(candidates(&minimal).is_empty());
    }

    #[test]
    fn shrinking_a_clean_trial_is_an_error() {
        let s = TrialSpec {
            index: 0,
            site: FaultSite::LeaderResult,
            benchmark: Benchmark::Gzip,
            ecc: EccConfig::paper(),
            instructions: 8_000,
            inject_at: 3_000,
            bit: 4,
            reg: 2,
        };
        assert!(shrink(&s, 50).is_err());
    }
}
