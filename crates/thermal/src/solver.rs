//! Steady-state 3D thermal grid solver (HotSpot-style finite volumes).
//!
//! Each stack layer is discretized into `grid x grid` cells. Cells
//! conduct laterally within a layer and vertically to the layers above
//! and below; the bottom face convects into the ambient through the
//! calibrated sink coefficient; all other outer faces are adiabatic
//! (standard HotSpot secondary-path simplification). The resulting
//! linear system `G·T = P` is solved by red-black successive
//! over-relaxation.

use crate::model::{layer_stack, PowerMap, ThermalConfig};
use crate::result::ThermalResult;
use rmt3d_floorplan::ChipFloorplan;
use rmt3d_telemetry::{emit, Event, NullSink, Sink};
use rmt3d_units::Celsius;

/// Errors from a thermal solve.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The configuration failed validation.
    BadConfig(String),
    /// SOR failed to converge within the iteration cap.
    NotConverged {
        /// Residual at the cap.
        residual: f64,
    },
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::BadConfig(msg) => write!(f, "invalid thermal configuration: {msg}"),
            ThermalError::NotConverged { residual } => {
                write!(
                    f,
                    "thermal solver did not converge (residual {residual:.2e} K)"
                )
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Solves the steady-state temperature field of `plan` under `power`.
///
/// # Errors
///
/// Returns [`ThermalError::BadConfig`] for invalid configurations and
/// [`ThermalError::NotConverged`] if SOR stalls (pathological inputs).
pub fn solve(
    plan: &ChipFloorplan,
    power: &PowerMap,
    cfg: &ThermalConfig,
) -> Result<ThermalResult, ThermalError> {
    solve_traced(plan, power, cfg, &mut NullSink)
}

/// Like [`solve`], additionally reporting each SOR sweep's residual to
/// `sink` as an [`Event::SolverIteration`] (for convergence plots).
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_traced<S: Sink>(
    plan: &ChipFloorplan,
    power: &PowerMap,
    cfg: &ThermalConfig,
    sink: &mut S,
) -> Result<ThermalResult, ThermalError> {
    cfg.validate().map_err(ThermalError::BadConfig)?;
    let n = cfg.grid;
    let layers = layer_stack(plan, cfg);
    let nl = layers.len();

    // Geometry in metres.
    let die_w = plan.dies[0].width * 1e-3;
    let die_h = plan.dies[0].height * 1e-3;
    let cw = die_w / n as f64;
    let ch = die_h / n as f64;
    let cell_area = cw * ch;

    // Per-layer lateral conductances (uniform cells).
    // G_x couples east-west neighbours, G_y north-south.
    let g_x: Vec<f64> = layers
        .iter()
        .map(|l| l.conductivity * (l.thickness_um * 1e-6 * ch) / cw)
        .collect();
    let g_y: Vec<f64> = layers
        .iter()
        .map(|l| l.conductivity * (l.thickness_um * 1e-6 * cw) / ch)
        .collect();
    // Vertical conductance between layer l and l+1 (series of half
    // thicknesses).
    let g_v: Vec<f64> = layers
        .windows(2)
        .map(|w| {
            let r = (w[0].thickness_um * 1e-6) / (2.0 * w[0].conductivity)
                + (w[1].thickness_um * 1e-6) / (2.0 * w[1].conductivity);
            cell_area / r
        })
        .collect();
    // Bottom-face sink conductance per cell (through half the spreader).
    let r_sink = 1.0 / (cfg.sink_h * cell_area)
        + (layers[0].thickness_um * 1e-6) / (2.0 * layers[0].conductivity) / cell_area;
    let g_sink = 1.0 / r_sink;

    // Rasterize power onto the injection layers.
    let mut p = vec![0.0f64; nl * n * n];
    for (li, layer) in layers.iter().enumerate() {
        let Some(die_idx) = layer.injects_die else {
            continue;
        };
        let die = &plan.dies[die_idx];
        for block in &die.blocks {
            let w = power.get(block.id).0;
            if w == 0.0 {
                continue;
            }
            let density = w / (block.rect.w * block.rect.h); // W per mm^2
                                                             // Overlap of the block with each covered cell (mm units).
            let cw_mm = cw * 1e3;
            let ch_mm = ch * 1e3;
            let i0 = (block.rect.x / cw_mm).floor().max(0.0) as usize;
            let i1 = ((block.rect.right() / cw_mm).ceil() as usize).min(n);
            let j0 = (block.rect.y / ch_mm).floor().max(0.0) as usize;
            let j1 = ((block.rect.top() / ch_mm).ceil() as usize).min(n);
            for i in i0..i1 {
                for j in j0..j1 {
                    let ox = (block.rect.right().min((i + 1) as f64 * cw_mm)
                        - block.rect.x.max(i as f64 * cw_mm))
                    .max(0.0);
                    let oy = (block.rect.top().min((j + 1) as f64 * ch_mm)
                        - block.rect.y.max(j as f64 * ch_mm))
                    .max(0.0);
                    p[(li * n + j) * n + i] += density * ox * oy;
                }
            }
        }
    }

    // SOR over T (absolute °C), initialised at ambient.
    let amb = cfg.ambient.0;
    let mut t = vec![amb; nl * n * n];
    let idx = |l: usize, j: usize, i: usize| (l * n + j) * n + i;
    let mut residual = f64::INFINITY;
    let mut iters = 0;
    while residual > cfg.tolerance && iters < cfg.max_iters {
        residual = 0.0;
        for color in 0..2 {
            for l in 0..nl {
                for j in 0..n {
                    for i in 0..n {
                        if (i + j + l) % 2 != color {
                            continue;
                        }
                        let mut num = p[idx(l, j, i)];
                        let mut den = 0.0;
                        if i > 0 {
                            num += g_x[l] * t[idx(l, j, i - 1)];
                            den += g_x[l];
                        }
                        if i + 1 < n {
                            num += g_x[l] * t[idx(l, j, i + 1)];
                            den += g_x[l];
                        }
                        if j > 0 {
                            num += g_y[l] * t[idx(l, j - 1, i)];
                            den += g_y[l];
                        }
                        if j + 1 < n {
                            num += g_y[l] * t[idx(l, j + 1, i)];
                            den += g_y[l];
                        }
                        if l > 0 {
                            num += g_v[l - 1] * t[idx(l - 1, j, i)];
                            den += g_v[l - 1];
                        } else {
                            num += g_sink * amb;
                            den += g_sink;
                        }
                        if l + 1 < nl {
                            num += g_v[l] * t[idx(l + 1, j, i)];
                            den += g_v[l];
                        }
                        let old = t[idx(l, j, i)];
                        let gs = num / den;
                        let new = old + cfg.sor_omega * (gs - old);
                        let d = (new - old).abs();
                        if d > residual {
                            residual = d;
                        }
                        t[idx(l, j, i)] = new;
                    }
                }
            }
        }
        iters += 1;
        emit(sink, || Event::SolverIteration {
            iteration: iters as u64,
            residual,
        });
    }
    if residual > cfg.tolerance {
        return Err(ThermalError::NotConverged { residual });
    }

    // Extract per-die active-layer temperature fields.
    let mut die_fields = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        if let Some(die_idx) = layer.injects_die {
            let field: Vec<f64> = t[(li * n * n)..((li + 1) * n * n)].to_vec();
            die_fields.push((die_idx, field));
        }
    }
    die_fields.sort_by_key(|(d, _)| *d);
    Ok(ThermalResult::new(
        plan.clone(),
        n,
        die_fields.into_iter().map(|(_, f)| f).collect(),
        Celsius(amb),
        iters,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::table3;
    use rmt3d_floorplan::BlockId;
    use rmt3d_power::CoreBlock;

    use rmt3d_units::Watts;

    fn uniform_map(plan: &ChipFloorplan, total: f64) -> PowerMap {
        let mut m = PowerMap::new();
        let nblocks: usize = plan.dies.iter().map(|d| d.blocks.len()).sum();
        for die in &plan.dies {
            for b in &die.blocks {
                m.set(b.id, Watts(total / nblocks as f64));
            }
        }
        m
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let plan = ChipFloorplan::two_d_a();
        let r = solve(&plan, &PowerMap::new(), &ThermalConfig::fast()).unwrap();
        assert!((r.peak().0 - 47.0).abs() < 1e-3, "peak {}", r.peak());
    }

    #[test]
    fn uniform_power_heats_uniformly_above_ambient() {
        let plan = ChipFloorplan::two_d_a();
        let cfg = ThermalConfig::fast();
        let r = solve(&plan, &uniform_map(&plan, 45.0), &cfg).unwrap();
        assert!(r.peak().0 > 50.0, "heated: {}", r.peak());
        // Energy balance: under uniform power the mean active-layer rise
        // equals P times the series resistance of sink + spreader + bulk
        // (+ half the active/metal layer) over the die area.
        let area = plan.dies[0].area().0 * 1e-6;
        let r_stack = 1.0 / cfg.sink_h
            + cfg.spreader_um * 1e-6 / cfg.spreader_k
            + table3::BULK_DIE1_UM * 1e-6 / table3::K_SI
            + (table3::ACTIVE_UM + table3::METAL_UM) * 1e-6 / (2.0 * table3::K_METAL);
        let expected = 45.0 * r_stack / area;
        let mean_rise = r.mean().0 - 47.0;
        assert!(
            (mean_rise - expected).abs() / expected < 0.10,
            "mean rise {mean_rise} vs conservation estimate {expected}"
        );
    }

    #[test]
    fn doubling_power_doubles_the_rise() {
        // The system is linear in power.
        let plan = ChipFloorplan::two_d_a();
        let cfg = ThermalConfig::fast();
        let r1 = solve(&plan, &uniform_map(&plan, 20.0), &cfg).unwrap();
        let r2 = solve(&plan, &uniform_map(&plan, 40.0), &cfg).unwrap();
        let rise1 = r1.peak().0 - 47.0;
        let rise2 = r2.peak().0 - 47.0;
        assert!((rise2 / rise1 - 2.0).abs() < 0.05, "{rise1} -> {rise2}");
    }

    #[test]
    fn concentrated_power_is_hotter_than_spread_power() {
        let plan = ChipFloorplan::two_d_a();
        let cfg = ThermalConfig::fast();
        let mut hot = PowerMap::new();
        hot.set(BlockId::Leader(CoreBlock::ExecInt), Watts(20.0));
        let spread = uniform_map(&plan, 20.0);
        let r_hot = solve(&plan, &hot, &cfg).unwrap();
        let r_spread = solve(&plan, &spread, &cfg).unwrap();
        assert!(
            r_hot.peak().0 > r_spread.peak().0 + 2.0,
            "hotspot {} vs spread {}",
            r_hot.peak(),
            r_spread.peak()
        );
    }

    #[test]
    fn upper_die_power_heats_more_than_lower_die_power() {
        // Heat from the stacked die must traverse the d2d layer and the
        // lower die to reach the sink — the core 3D thermal penalty.
        let plan = ChipFloorplan::three_d_2a();
        let cfg = ThermalConfig::fast();
        // Same power on same-sized, vertically aligned footprints: bank
        // (0,1) sits at x[0,2.48] y[3.6..], bank (1,3) at x[0,2.48]
        // y[3.25..] directly above it.
        let mut lower = PowerMap::new();
        lower.set(BlockId::L2Bank { die: 0, index: 1 }, Watts(10.0));
        let mut upper = PowerMap::new();
        upper.set(BlockId::L2Bank { die: 1, index: 3 }, Watts(10.0));
        let rl = solve(&plan, &lower, &cfg).unwrap();
        let ru = solve(&plan, &upper, &cfg).unwrap();
        assert!(
            ru.peak().0 > rl.peak().0,
            "upper {} should exceed lower {}",
            ru.peak(),
            rl.peak()
        );
    }

    #[test]
    fn larger_die_runs_cooler_at_equal_power() {
        // 2d-2a has twice the area (and effectively a larger sink).
        let small = ChipFloorplan::two_d_a();
        let large = ChipFloorplan::two_d_2a();
        let cfg = ThermalConfig::fast();
        let rs = solve(&small, &uniform_map(&small, 45.0), &cfg).unwrap();
        let rl = solve(&large, &uniform_map(&large, 45.0), &cfg).unwrap();
        assert!(rl.peak().0 < rs.peak().0);
    }

    #[test]
    fn bad_config_is_rejected() {
        let cfg = ThermalConfig {
            grid: 1,
            ..ThermalConfig::fast()
        };
        let e = solve(&ChipFloorplan::two_d_a(), &PowerMap::new(), &cfg).unwrap_err();
        assert!(matches!(e, ThermalError::BadConfig(_)));
        assert!(!e.to_string().is_empty());
    }
}
