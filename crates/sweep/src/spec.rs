//! Declarative sweep specifications and their expansion into jobs.
//!
//! A [`SweepSpec`] is the cross product of axes over the paper's design
//! space — processor model, benchmark, leader frequency, checker
//! frequency cap, NUCA policy — at one [`RunScale`]. [`SweepSpec::expand`]
//! flattens it into a deterministic, model-major job list; the engine
//! aggregates results back in exactly that order, so parallel execution
//! is invisible to consumers.

use rmt3d::{ProcessorModel, RunScale, SimConfig};
use rmt3d_cache::NucaPolicy;
use rmt3d_units::Gigahertz;
use rmt3d_workload::Benchmark;

/// Version tag folded into every cache key. Bump when the simulator or
/// the result schema changes in a way that invalidates cached results.
pub const CACHE_VERSION: &str = concat!("rmt3d-sweep/", env!("CARGO_PKG_VERSION"), "/2");

/// A declarative design-space sweep: the cross product of the axes,
/// expanded in axis order (model-major, then benchmark, frequency,
/// checker cap, policy).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Processor organizations to sweep.
    pub models: Vec<ProcessorModel>,
    /// Benchmarks to sweep.
    pub benchmarks: Vec<Benchmark>,
    /// Leading-core clocks (default: the nominal 2 GHz).
    pub frequencies: Vec<Gigahertz>,
    /// Checker peak-frequency caps (default: uncapped, 1.0).
    pub checker_peak_fractions: Vec<f64>,
    /// NUCA placement policies (default: distributed sets).
    pub policies: Vec<NucaPolicy>,
    /// Simulation lengths shared by every job.
    pub scale: RunScale,
}

impl SweepSpec {
    /// A sweep over `models × benchmarks` at the nominal configuration.
    pub fn new(models: &[ProcessorModel], benchmarks: &[Benchmark], scale: RunScale) -> SweepSpec {
        SweepSpec {
            models: models.to_vec(),
            benchmarks: benchmarks.to_vec(),
            frequencies: vec![Gigahertz(2.0)],
            checker_peak_fractions: vec![1.0],
            policies: vec![NucaPolicy::DistributedSets],
            scale,
        }
    }

    /// The paper's full 19-benchmark suite over all four models.
    pub fn paper_suite(scale: RunScale) -> SweepSpec {
        SweepSpec::new(&ProcessorModel::ALL, &Benchmark::ALL, scale)
    }

    /// Number of jobs the spec expands to.
    pub fn job_count(&self) -> usize {
        self.models.len()
            * self.benchmarks.len()
            * self.frequencies.len()
            * self.checker_peak_fractions.len()
            * self.policies.len()
    }

    /// Expands the cross product into the deterministic job list.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for &model in &self.models {
            for &benchmark in &self.benchmarks {
                for &frequency in &self.frequencies {
                    for &cap in &self.checker_peak_fractions {
                        for &policy in &self.policies {
                            let cfg = SimConfig {
                                policy,
                                frequency,
                                checker_peak_fraction: cap,
                                ..SimConfig::nominal(model, self.scale)
                            };
                            jobs.push(JobSpec {
                                index: jobs.len(),
                                cfg,
                                benchmark,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// One unit of work: a full [`SimConfig`] plus the benchmark to run.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Position in spec order; results aggregate back under this index.
    pub index: usize,
    /// Complete simulation configuration.
    pub cfg: SimConfig,
    /// Benchmark to simulate.
    pub benchmark: Benchmark,
}

impl JobSpec {
    /// Short human-readable description (`"3d-2a/mcf"`, with non-nominal
    /// axes appended).
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}", self.cfg.model, self.benchmark);
        if (self.cfg.frequency.value() - 2.0).abs() > 1e-12 {
            s.push_str(&format!("@{:.2}GHz", self.cfg.frequency.value()));
        }
        if (self.cfg.checker_peak_fraction - 1.0).abs() > 1e-12 {
            s.push_str(&format!("/cap{:.2}", self.cfg.checker_peak_fraction));
        }
        if self.cfg.policy != NucaPolicy::DistributedSets {
            s.push_str("/ways");
        }
        s
    }

    /// Canonical text of everything that determines the job's result.
    /// The content-addressed cache stores this alongside the result and
    /// re-verifies it on load, so a hash collision can never alias two
    /// different configurations.
    pub fn canonical(&self) -> String {
        let layout = match &self.cfg.layout {
            None => String::from("nominal"),
            Some(l) => format!(
                "{}:banks{:?}:ctl{:?}:hop{}:cross{}:bank{}:ctrl{}",
                l.name,
                l.banks,
                l.controller,
                l.hop_cycles,
                l.die_cross_cycles,
                l.bank_cycles,
                l.controller_cycles
            ),
        };
        format!(
            "{CACHE_VERSION}|model={}|bench={}|layout={layout}|policy={}|freq={:?}|cap={:?}|warmup={}|instr={}|grid={}",
            self.cfg.model,
            self.benchmark,
            self.cfg.policy,
            self.cfg.frequency.value(),
            self.cfg.checker_peak_fraction,
            self.cfg.scale.warmup_instructions,
            self.cfg.scale.instructions,
            self.cfg.scale.thermal_grid,
        )
    }

    /// Stable 64-bit content hash of [`JobSpec::canonical`] (FNV-1a);
    /// the cache file name is this key in hex.
    pub fn cache_key(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms and
/// compiler versions (unlike `DefaultHasher`, which is explicitly
/// unstable between releases).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            &[ProcessorModel::TwoDA, ProcessorModel::ThreeD2A],
            &[Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim],
            RunScale::quick(),
        )
    }

    #[test]
    fn expansion_is_deterministic_and_model_major() {
        let jobs_a = spec().expand();
        let jobs_b = spec().expand();
        assert_eq!(jobs_a.len(), 6);
        assert_eq!(jobs_a.len(), spec().job_count());
        for (a, b) in jobs_a.iter().zip(&jobs_b) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.canonical(), b.canonical());
        }
        // Model-major: first three jobs are 2d-a, last three 3d-2a.
        assert!(jobs_a[..3]
            .iter()
            .all(|j| j.cfg.model == ProcessorModel::TwoDA));
        assert!(jobs_a[3..]
            .iter()
            .all(|j| j.cfg.model == ProcessorModel::ThreeD2A));
    }

    #[test]
    fn cache_keys_are_stable_and_distinct() {
        let jobs = spec().expand();
        let keys: Vec<u64> = jobs.iter().map(JobSpec::cache_key).collect();
        let again: Vec<u64> = spec().expand().iter().map(JobSpec::cache_key).collect();
        assert_eq!(keys, again, "keys must be reproducible");
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "keys must be distinct");
    }

    #[test]
    fn key_depends_on_every_axis() {
        let base = spec().expand().remove(0);
        let mut freq = base.clone();
        freq.cfg.frequency = Gigahertz(1.8);
        let mut cap = base.clone();
        cap.cfg.checker_peak_fraction = 0.7;
        let mut scale = base.clone();
        scale.cfg.scale.instructions += 1;
        for other in [&freq, &cap, &scale] {
            assert_ne!(base.cache_key(), other.cache_key());
        }
    }

    #[test]
    fn labels_name_the_design_point() {
        let jobs = spec().expand();
        assert_eq!(jobs[0].label(), "2d-a/gzip");
        let mut j = jobs[5].clone();
        j.cfg.frequency = Gigahertz(1.8);
        j.cfg.policy = NucaPolicy::DistributedWays;
        assert_eq!(j.label(), "3d-2a/swim@1.80GHz/ways");
    }

    #[test]
    fn paper_suite_is_the_19_benchmark_grid() {
        let s = SweepSpec::paper_suite(RunScale::quick());
        assert_eq!(s.job_count(), 4 * 19);
    }
}
