//! Deterministic micro-op trace generation.

use crate::op::{ArchReg, BranchInfo, MemRef, MicroOp, OpClass, INT_REG_COUNT};
use crate::prng::SplitMix64;
use crate::profile::WorkloadProfile;

/// Cache-line size assumed by the spatial-locality model (bytes).
const LINE: u64 = 64;

/// Base addresses keeping the three memory regions disjoint.
const HOT_BASE: u64 = 0x0100_0000;
const WARM_BASE: u64 = 0x1000_0000;
const STREAM_BASE: u64 = 0x8000_0000;
/// The streaming region wraps after 256 MiB — far larger than any cache.
const STREAM_SIZE: u64 = 256 * 1024 * 1024;

/// Code region: static branch sites and instruction PCs live here.
const CODE_BASE: u64 = 0x0040_0000;
/// Sequential code wraps within this footprint: programs loop, so the
/// instruction working set stays cacheable (SPEC2k I-miss rates are
/// small). 16 KiB of straight-line code + the branch-site region fit
/// comfortably in the 32 KiB L1 I-cache.
const CODE_FOOTPRINT: u64 = 16 * 1024;

/// Address-space regions touched by a profile's memory references, used
/// by simulators to warm caches to steady state before measuring (the
/// paper measures 100M-instruction SimPoint windows of long-running
/// programs; short simulation windows must start from warmed caches to
/// match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegions {
    /// `(base, bytes)` of the hot region.
    pub hot: (u64, u64),
    /// `(base, bytes)` of the warm region.
    pub warm: (u64, u64),
    /// `(base, bytes)` of the code footprint (instruction fetches).
    pub code: (u64, u64),
}

impl MemoryRegions {
    /// Computes the regions for a profile.
    pub fn of(profile: &crate::WorkloadProfile) -> MemoryRegions {
        MemoryRegions {
            hot: (HOT_BASE, profile.memory.hot_kb as u64 * 1024),
            warm: (WARM_BASE, profile.memory.warm_kb as u64 * 1024),
            code: (CODE_BASE, CODE_FOOTPRINT),
        }
    }
}

/// Behaviour of one static branch site.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// Taken with fixed probability (hard for any predictor when p≈0.5).
    Biased(f64),
    /// Repeating taken/not-taken pattern of the given period — learnable
    /// by a history-based (2-level) predictor but not by bimodal alone.
    Periodic { period: u8 },
}

#[derive(Debug, Clone)]
struct BranchSite {
    pc: u64,
    target: u64,
    kind: BranchKind,
    /// Occurrence counter driving periodic patterns.
    count: u64,
}

impl BranchSite {
    fn next_outcome(&mut self, rng: &mut SplitMix64) -> bool {
        self.count += 1;
        match self.kind {
            BranchKind::Biased(p) => rng.next_f64() < p,
            BranchKind::Periodic { period } => {
                // Pattern: taken for all but one slot of each period —
                // a loop-branch shape (taken N-1 times, then falls out).
                !self.count.is_multiple_of(period as u64)
            }
        }
    }
}

/// Deterministic generator of [`MicroOp`] streams for one
/// [`WorkloadProfile`].
///
/// The generator is an infinite iterator: call [`TraceGenerator::next_op`]
/// as many times as the simulation window requires (the paper uses 100M
/// instructions; the default experiments here use shorter windows, see
/// `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SplitMix64,
    cum_mix: [f64; 7],
    /// Precomputed `ln(1 - 1/dep_mean)`: the denominator of the inverse
    /// geometric CDF, constant per profile.
    geo_denom: f64,
    /// Descending thresholds `exp(k * geo_denom)` for k = 0..=64: the
    /// geometric quantile `ceil(ln u / geo_denom)` equals the first `k`
    /// with `u >= geo_thresh[k]`, except within float-rounding distance
    /// of a boundary (where the sampler falls back to the `ln`).
    geo_thresh: [f64; 65],
    seq: u64,
    pc: u64,
    /// Destination registers of the most recent 64 register-writing ops,
    /// indexed by sequence modulo capacity; `None` for non-writers.
    recent_dests: [Option<ArchReg>; 64],
    /// Occupancy bitmask over `recent_dests`: bit `i` set iff
    /// `recent_dests[i]` is `Some`. Lets the producer search run on bit
    /// scans instead of a linear probe.
    dest_mask: u64,
    branches: Vec<BranchSite>,
    /// Current streaming pointer.
    stream_ptr: u64,
    /// Remaining lines in the current sequential run and its cursor.
    run_left: u32,
    run_addr: u64,
    /// Round-robin destination register cursors (int / fp).
    next_int_dest: u8,
    next_fp_dest: u8,
}

impl TraceGenerator {
    /// Creates a generator for a profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`]; profiles
    /// from [`crate::Benchmark`] always validate.
    pub fn new(profile: WorkloadProfile) -> TraceGenerator {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload profile `{}`: {e}", profile.name));
        let mut rng = SplitMix64::new(profile.seed);
        let mut branches = Vec::with_capacity(profile.static_branches as usize);
        for i in 0..profile.static_branches {
            let pc = CODE_BASE + (i as u64) * 16;
            let target = CODE_BASE + rng.below(profile.static_branches as u64 * 16);
            let kind = if rng.next_f64() < profile.predictability {
                // Periods are capped at 12 so a 12-bit history register
                // can disambiguate every position (longer periods are
                // intrinsically ambiguous for the Table 1 predictor).
                BranchKind::Periodic {
                    period: 2 + (rng.below(11) as u8),
                }
            } else {
                // Biased branches: mostly strongly biased (predictable by
                // bimodal), a few near-random ones.
                let p = if rng.next_f64() < 0.85 {
                    if rng.next_f64() < 0.5 {
                        0.95
                    } else {
                        0.05
                    }
                } else {
                    0.35 + 0.3 * rng.next_f64()
                };
                BranchKind::Biased(p)
            };
            branches.push(BranchSite {
                pc,
                target,
                kind,
                count: 0,
            });
        }
        let cum_mix = profile.mix.cumulative();
        let geo_denom = (1.0 - 1.0 / profile.dep_mean).ln();
        let mut geo_thresh = [0.0; 65];
        for (k, t) in geo_thresh.iter_mut().enumerate() {
            *t = (k as f64 * geo_denom).exp();
        }
        TraceGenerator {
            profile,
            rng,
            cum_mix,
            geo_denom,
            geo_thresh,
            seq: 0,
            pc: CODE_BASE,
            recent_dests: [None; 64],
            dest_mask: 0,
            branches,
            stream_ptr: STREAM_BASE,
            run_left: 0,
            run_addr: 0,
            next_int_dest: 1,
            next_fp_dest: 0,
        }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of ops generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    fn sample_class(&mut self) -> OpClass {
        let u = self.rng.next_f64();
        // Branch-free rank over the cumulative mix: the index of the
        // first bucket with `u < c` is the count of buckets below `u`
        // (the cumulative is non-decreasing). Saturate to Branch, the
        // last class, when rounding leaves the final bucket short of 1.
        let i: usize = self.cum_mix.iter().map(|&c| (u >= c) as usize).sum();
        OpClass::ALL[i.min(OpClass::ALL.len() - 1)]
    }

    /// Draws a geometric dependence distance with the profile's mean,
    /// clamped to the 64-entry producer window.
    fn sample_dep_distance(&mut self) -> u32 {
        // Geometric with success probability 1/mean, support {1,2,...}.
        let u = self.rng.next_f64().max(1e-12);
        geometric_distance(u, self.geo_denom, &self.geo_thresh)
    }

    /// Finds the nearest register-writing producer at or beyond the
    /// sampled distance; returns `(distance, reg)` or `None` when no
    /// producer exists yet (trace warm-up).
    fn pick_source(&mut self) -> Option<(u32, ArchReg)> {
        let want = self.sample_dep_distance();
        let d = producer_distance(self.dest_mask, self.seq, want)?;
        let idx = ((self.seq - d as u64) % 64) as usize;
        Some((d, self.recent_dests[idx].expect("mask bit set")))
    }

    fn next_mem_ref(&mut self) -> MemRef {
        let m = &self.profile.memory;
        if self.run_left > 0 {
            // Continue the current sequential run.
            self.run_left -= 1;
            self.run_addr += LINE;
            return MemRef {
                addr: self.run_addr,
                size: 8,
            };
        }
        let u = self.rng.next_f64();
        let addr = if u < m.p_hot {
            let span = m.hot_kb as u64 * 1024;
            HOT_BASE + self.rng.below(span / LINE) * LINE + self.rng.below(8) * 8
        } else if u < m.p_hot + m.p_warm {
            let span = m.warm_kb as u64 * 1024;
            WARM_BASE + self.rng.below(span / LINE) * LINE
        } else {
            self.stream_ptr += LINE;
            if self.stream_ptr >= STREAM_BASE + STREAM_SIZE {
                self.stream_ptr = STREAM_BASE;
            }
            self.stream_ptr
        };
        // Begin a sequential run with probability shaped by spatial_run.
        if m.spatial_run > 1 && self.rng.next_f64() < 1.0 / m.spatial_run as f64 {
            self.run_left = self.rng.below(m.spatial_run as u64 * 2) as u32;
            self.run_addr = addr;
        }
        MemRef { addr, size: 8 }
    }

    fn alloc_dest(&mut self, fp: bool) -> ArchReg {
        if fp {
            let r = ArchReg::new(INT_REG_COUNT + self.next_fp_dest);
            self.next_fp_dest = (self.next_fp_dest + 1) % INT_REG_COUNT;
            r
        } else {
            // Skip r0 (hardwired zero on Alpha).
            let r = ArchReg::new(self.next_int_dest);
            self.next_int_dest = 1 + (self.next_int_dest % (INT_REG_COUNT - 1));
            r
        }
    }

    /// Generates the next micro-op in program order.
    pub fn next_op(&mut self) -> MicroOp {
        let kind = self.sample_class();
        let imm = self.rng.next_u64();

        let (src1, src2) = match kind {
            OpClass::IntAlu | OpClass::Branch => (self.pick_source(), {
                if self.rng.next_f64() < 0.6 {
                    self.pick_source()
                } else {
                    None
                }
            }),
            OpClass::IntMul | OpClass::FpAlu | OpClass::FpMul => {
                (self.pick_source(), self.pick_source())
            }
            OpClass::Load => (self.pick_source(), None), // address register
            OpClass::Store => (self.pick_source(), self.pick_source()), // data + address
        };

        let dest = if kind.writes_register() {
            Some(self.alloc_dest(kind.is_fp()))
        } else {
            None
        };

        let mem = if kind.is_memory() {
            Some(self.next_mem_ref())
        } else {
            None
        };

        let (pc, branch) = if kind == OpClass::Branch {
            let site_idx = self.rng.below(self.branches.len() as u64) as usize;
            let taken = {
                let site = &mut self.branches[site_idx];

                site.next_outcome(&mut self.rng)
            };
            let site = &self.branches[site_idx];
            (
                site.pc,
                Some(BranchInfo {
                    taken,
                    target: site.target,
                }),
            )
        } else {
            self.pc = CODE_BASE + ((self.pc + 4 - CODE_BASE) % CODE_FOOTPRINT);
            (self.pc, None)
        };

        let op = MicroOp {
            seq: self.seq,
            pc,
            imm,
            mem_addr: MicroOp::pack_mem(mem),
            branch_packed: MicroOp::pack_branch(branch),
            src1_dist: src1.and_then(|(d, _)| std::num::NonZeroU32::new(d)),
            src2_dist: src2.and_then(|(d, _)| std::num::NonZeroU32::new(d)),
            kind,
            dest,
            src1_reg: src1.map(|(_, r)| r),
            src2_reg: src2.map(|(_, r)| r),
        };

        let slot = (self.seq % 64) as usize;
        self.recent_dests[slot] = dest;
        self.dest_mask = (self.dest_mask & !(1u64 << slot)) | ((dest.is_some() as u64) << slot);
        self.seq += 1;
        op
    }

    /// Generates the next `n` ops into a vector.
    pub fn take_ops(&mut self, n: usize) -> Vec<MicroOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

/// Producer search over the 64-slot occupancy mask: the distance of the
/// nearest occupied slot at or beyond `want` (preferring the smallest
/// such distance), falling back to the largest occupied distance below
/// `want`. Bit `i` of `mask` marks slot `i` (sequence `s` with
/// `s % 64 == i`) as holding a register-writing producer; slots are only
/// ever set for sequences below `seq`, so the window bound `d <= seq`
/// is implicit. Distances range over `1..=63`.
/// Inverse-CDF geometric quantile `ceil(ln u / denom).clamp(1, 63)`,
/// computed by walking the precomputed descending thresholds
/// `thresh[k] = exp(k * denom)` instead of taking a logarithm per draw
/// (mean distances are small, so the walk is a few compares). Within
/// float-rounding distance of a threshold the walk and the direct
/// formula could disagree, so the sampler falls back to the exact `ln`
/// there — the fallback fires with probability ~1e-9 per draw and keeps
/// the result bit-identical to the direct formula everywhere.
#[inline]
fn geometric_distance(u: f64, denom: f64, thresh: &[f64; 65]) -> u32 {
    // Branch-free count of thresholds above `u`: the thresholds are
    // strictly descending, so `1 + #{k in 1..64 : u < thresh[k]}` equals
    // the first non-matching index the early-exit loop would stop at.
    // The fixed-trip loop auto-vectorizes and never mispredicts, which
    // beats the early exit for the data-dependent draws seen here.
    let mut above = 0usize;
    for &t in &thresh[1..64] {
        above += (u < t) as usize;
    }
    let k = 1 + above;
    if k == 64 {
        // `d >= 64` either way; the clamp maps both sides to 63.
        return 63;
    }
    let margin = 1e-9 * thresh[k - 1];
    if u - thresh[k] < margin || thresh[k - 1] - u < margin {
        let d = (u.ln() / denom).ceil() as u32;
        return d.clamp(1, 63);
    }
    k as u32
}

#[inline]
fn producer_distance(mask: u64, seq: u64, want: u32) -> Option<u32> {
    debug_assert!((1..64).contains(&want));
    // Rotate so that bit `(64 - d) & 63` of `y` corresponds to the slot
    // at distance `d` behind `seq`.
    let y = mask.rotate_right((seq % 64) as u32);
    // Distances `want..=63` map to bits `64-want` down to `1`; the
    // nearest (smallest d >= want) is the highest such set bit.
    let near = y & (u64::MAX >> (want - 1)) & !1u64;
    if near != 0 {
        return Some(1 + near.leading_zeros());
    }
    // Fall back to distances `want-1` down to `1`: bits `65-want` up to
    // `63`; the first match scanning d downward is the lowest set bit.
    if want >= 2 {
        let far = y & (u64::MAX << (65 - want));
        if far != 0 {
            return Some(64 - far.trailing_zeros());
        }
    }
    None
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2k::Benchmark;

    #[test]
    fn deterministic_across_instances() {
        let a = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(1000);
        let b = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(200);
        let b = TraceGenerator::new(Benchmark::Mcf.profile()).take_ops(200);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_converges_to_profile() {
        let profile = Benchmark::Gzip.profile();
        let mix = profile.mix;
        let ops = TraceGenerator::new(profile).take_ops(200_000);
        let frac =
            |k: OpClass| ops.iter().filter(|o| o.kind == k).count() as f64 / ops.len() as f64;
        assert!((frac(OpClass::Load) - mix.load).abs() < 0.01);
        assert!((frac(OpClass::Branch) - mix.branch).abs() < 0.01);
        assert!((frac(OpClass::IntAlu) - mix.int_alu).abs() < 0.01);
    }

    #[test]
    fn dependences_reference_real_producers() {
        let ops = TraceGenerator::new(Benchmark::Twolf.profile()).take_ops(5000);
        for (i, op) in ops.iter().enumerate() {
            for (dist, reg) in [(op.src1_dist, op.src1_reg), (op.src2_dist, op.src2_reg)] {
                if let Some(d) = dist {
                    let d = d.get() as usize;
                    assert!(d >= 1 && d <= i, "distance in range");
                    let producer = &ops[i - d];
                    assert_eq!(
                        producer.dest, reg,
                        "source register must match producer dest at #{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_ops_carry_outcomes_and_others_do_not() {
        let ops = TraceGenerator::new(Benchmark::Vpr.profile()).take_ops(5000);
        for op in &ops {
            assert_eq!(op.kind == OpClass::Branch, op.branch().is_some());
            assert_eq!(op.kind.is_memory(), op.mem().is_some());
            assert_eq!(op.kind.writes_register(), op.dest.is_some());
        }
    }

    #[test]
    fn memory_regions_are_disjoint() {
        let ops = TraceGenerator::new(Benchmark::Art.profile()).take_ops(50_000);
        for op in &ops {
            if let Some(m) = op.mem() {
                assert!(m.addr >= HOT_BASE, "below all regions: {:#x}", m.addr);
            }
        }
    }

    #[test]
    fn sequence_numbers_are_contiguous() {
        let ops = TraceGenerator::new(Benchmark::Eon.profile()).take_ops(100);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.seq, i as u64);
        }
    }

    #[test]
    fn iterator_interface_matches_next_op() {
        let mut g1 = TraceGenerator::new(Benchmark::Gap.profile());
        let mut g2 = TraceGenerator::new(Benchmark::Gap.profile());
        for _ in 0..50 {
            assert_eq!(g1.next(), Some(g2.next_op()));
        }
    }

    /// The pre-optimization linear producer scan, kept as the reference
    /// semantics for the bit-scan implementation.
    fn producer_distance_reference(occupied: &[bool; 64], seq: u64, want: u32) -> Option<u32> {
        for d in want..64 {
            if d as u64 > seq {
                break;
            }
            if occupied[((seq - d as u64) % 64) as usize] {
                return Some(d);
            }
        }
        for d in (1..want).rev() {
            if d as u64 > seq {
                continue;
            }
            if occupied[((seq - d as u64) % 64) as usize] {
                return Some(d);
            }
        }
        None
    }

    #[test]
    fn producer_bit_scan_matches_linear_reference() {
        let mut rng = SplitMix64::new(0xfeed);
        for trial in 0..20_000 {
            // Mix degenerate and random masks; during warm-up (seq < 64)
            // only slots below seq may be occupied, matching how
            // `next_op` fills the window.
            let seq = match trial % 4 {
                0 => rng.below(64),
                _ => 64 + rng.below(1 << 40),
            };
            let raw = match trial % 5 {
                0 => 0,
                1 => u64::MAX,
                _ => rng.next_u64() & rng.next_u64(),
            };
            let mask = if seq < 64 {
                raw & ((1u64 << seq) - 1)
            } else {
                raw
            };
            let mut occupied = [false; 64];
            for (i, o) in occupied.iter_mut().enumerate() {
                *o = mask >> i & 1 == 1;
            }
            for want in 1..64 {
                assert_eq!(
                    producer_distance(mask, seq, want),
                    producer_distance_reference(&occupied, seq, want),
                    "mask {mask:#x} seq {seq} want {want}"
                );
            }
        }
    }

    #[test]
    fn geometric_threshold_walk_matches_direct_formula() {
        let mut rng = SplitMix64::new(0xd15c);
        for trial in 0..200 {
            let mean = 1.05 + 30.0 * rng.next_f64();
            let denom = (1.0 - 1.0 / mean).ln();
            let mut thresh = [0.0; 65];
            for (k, t) in thresh.iter_mut().enumerate() {
                *t = (k as f64 * denom).exp();
            }
            for _ in 0..5_000 {
                let u = rng.next_f64().max(1e-12);
                let direct = ((u.ln() / denom).ceil() as u32).clamp(1, 63);
                assert_eq!(
                    geometric_distance(u, denom, &thresh),
                    direct,
                    "mean {mean} u {u} (trial {trial})"
                );
            }
            // Exercise the boundary fallback with u at and around the
            // thresholds themselves.
            for k in 1..64 {
                for u in [
                    thresh[k],
                    thresh[k] * (1.0 + 1e-15),
                    thresh[k] * (1.0 - 1e-15),
                ] {
                    let u = u.max(1e-12);
                    let direct = ((u.ln() / denom).ceil() as u32).clamp(1, 63);
                    assert_eq!(geometric_distance(u, denom, &thresh), direct);
                }
            }
        }
    }

    #[test]
    fn splitmix_statistics() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean of uniform should be ~0.5");
        // below(n) stays in range.
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
