//! Power, temperature and geometry quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the standard arithmetic surface shared by all linear
/// quantities: addition/subtraction with itself and scaling by `f64`.
macro_rules! linear_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw scalar value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }
    };
}

linear_quantity!(
    /// Electrical or thermal power in watts.
    Watts,
    "W"
);
linear_quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
linear_quantity!(
    /// Area in square millimetres (the natural unit for die floorplans).
    SquareMillimeters,
    "mm^2"
);
linear_quantity!(
    /// Length in millimetres (floorplan coordinates, wire lengths).
    Millimeters,
    "mm"
);
linear_quantity!(
    /// Length in micrometres (layer thicknesses, via dimensions).
    Micrometers,
    "um"
);
linear_quantity!(
    /// Length in nanometres (feature sizes, wire pitch).
    Nanometers,
    "nm"
);
linear_quantity!(
    /// A temperature *difference* in degrees (Celsius and Kelvin deltas
    /// are identical).
    DegreesDelta,
    "deg"
);

impl Watts {
    /// Converts to milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Constructs from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Watts {
        Watts(mw * 1e-3)
    }
}

impl Millimeters {
    /// Converts to metres.
    #[inline]
    pub fn meters(self) -> f64 {
        self.0 * 1e-3
    }

    /// Converts to micrometres.
    #[inline]
    pub fn micrometers(self) -> Micrometers {
        Micrometers(self.0 * 1e3)
    }
}

impl Micrometers {
    /// Converts to metres.
    #[inline]
    pub fn meters(self) -> f64 {
        self.0 * 1e-6
    }

    /// Converts to millimetres.
    #[inline]
    pub fn millimeters(self) -> Millimeters {
        Millimeters(self.0 * 1e-3)
    }
}

impl Nanometers {
    /// Converts to metres.
    #[inline]
    pub fn meters(self) -> f64 {
        self.0 * 1e-9
    }

    /// Converts to millimetres.
    #[inline]
    pub fn millimeters(self) -> Millimeters {
        Millimeters(self.0 * 1e-6)
    }
}

impl Mul<Millimeters> for Millimeters {
    type Output = SquareMillimeters;
    #[inline]
    fn mul(self, rhs: Millimeters) -> SquareMillimeters {
        SquareMillimeters(self.0 * rhs.0)
    }
}

/// Power per unit area, the quantity that ultimately drives hot-spot
/// temperatures (paper §3.2: "the temperature increase is a strong
/// function of the power density of the hottest block").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PowerDensity(pub f64);

impl PowerDensity {
    /// Raw value in W/mm².
    #[inline]
    pub fn watts_per_mm2(self) -> f64 {
        self.0
    }

    /// Raw value in W/m².
    #[inline]
    pub fn watts_per_m2(self) -> f64 {
        self.0 * 1e6
    }
}

impl Div<SquareMillimeters> for Watts {
    type Output = PowerDensity;
    #[inline]
    fn div(self, rhs: SquareMillimeters) -> PowerDensity {
        PowerDensity(self.0 / rhs.0)
    }
}

impl Mul<SquareMillimeters> for PowerDensity {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: SquareMillimeters) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl fmt::Display for PowerDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} W/mm^2", self.0)
    }
}

/// An absolute temperature on the Celsius scale.
///
/// Absolute temperatures deliberately do **not** implement `Add<Celsius>`:
/// adding two absolute temperatures is meaningless. They combine with
/// [`DegreesDelta`] instead.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

/// An absolute temperature on the Kelvin scale.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(pub f64);

impl Celsius {
    /// Converts to Kelvin.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }

    /// Returns the larger of two temperatures.
    #[inline]
    pub fn max(self, other: Celsius) -> Celsius {
        Celsius(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    #[inline]
    pub fn min(self, other: Celsius) -> Celsius {
        Celsius(self.0.min(other.0))
    }

    /// Raw value in degrees Celsius.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Kelvin {
    /// Converts to Celsius.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - 273.15)
    }

    /// Raw value in kelvins.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

impl Add<DegreesDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: DegreesDelta) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub<DegreesDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: DegreesDelta) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

impl Sub for Celsius {
    type Output = DegreesDelta;
    #[inline]
    fn sub(self, rhs: Celsius) -> DegreesDelta {
        DegreesDelta(self.0 - rhs.0)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} C", self.0)
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        assert_eq!(Watts(1.5) + Watts(2.5), Watts(4.0));
        assert_eq!(Watts(5.0) - Watts(2.0), Watts(3.0));
        assert_eq!(Watts(2.0) * 3.0, Watts(6.0));
        assert_eq!(3.0 * Watts(2.0), Watts(6.0));
        assert_eq!(Watts(6.0) / 3.0, Watts(2.0));
        assert_eq!(Watts(6.0) / Watts(3.0), 2.0);
    }

    #[test]
    fn watts_sum_and_accumulate() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        let mut w = Watts(1.0);
        w += Watts(0.5);
        w -= Watts(0.25);
        assert_eq!(w, Watts(1.25));
    }

    #[test]
    fn milliwatt_round_trip() {
        let w = Watts::from_milliwatts(15.49);
        assert!((w.0 - 0.01549).abs() < 1e-12);
        assert!((w.milliwatts() - 15.49).abs() < 1e-9);
    }

    #[test]
    fn power_density_composition() {
        // Table 2: leading core 35 W over 19.6 mm^2.
        let d = Watts(35.0) / SquareMillimeters(19.6);
        assert!((d.watts_per_mm2() - 1.7857).abs() < 1e-3);
        let back = d * SquareMillimeters(19.6);
        assert!((back.0 - 35.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_scales() {
        let c = Celsius(47.0);
        assert!((c.to_kelvin().0 - 320.15).abs() < 1e-9);
        let k: Kelvin = c.into();
        let c2: Celsius = k.into();
        assert!((c2.0 - 47.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_deltas() {
        let base = Celsius(70.0);
        let hot = base + DegreesDelta(7.0);
        assert_eq!(hot, Celsius(77.0));
        assert_eq!(hot - base, DegreesDelta(7.0));
        assert_eq!(hot - DegreesDelta(7.0), base);
    }

    #[test]
    fn length_conversions() {
        assert!((Micrometers(10.0).meters() - 1e-5).abs() < 1e-18);
        assert!((Nanometers(210.0).millimeters().0 - 2.1e-4).abs() < 1e-12);
        assert!((Millimeters(1.0).micrometers().0 - 1000.0).abs() < 1e-9);
        let a = Millimeters(2.0) * Millimeters(3.0);
        assert_eq!(a, SquareMillimeters(6.0));
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
        assert_eq!((-Watts(3.0)).abs(), Watts(3.0));
        assert_eq!(Celsius(60.0).max(Celsius(50.0)), Celsius(60.0));
        assert_eq!(Celsius(60.0).min(Celsius(50.0)), Celsius(50.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Watts::ZERO).is_empty());
        assert!(!format!("{}", Celsius(0.0)).is_empty());
        assert!(!format!("{}", PowerDensity(0.0)).is_empty());
    }
}
