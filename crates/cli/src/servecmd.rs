//! The sweep-as-a-service subcommands: `rmt3d serve` (the daemon) and
//! its clients `submit`, `jobs`, `cancel`, `watch`, `stats`, `top`,
//! and `shutdown`.
//!
//! The daemon side wires [`rmt3d_serve::serve`] to the CLI's
//! conventions: the shared result cache defaults to the same
//! `target/sweep-cache` directory `rmt3d sweep` uses (so one-shot and
//! service runs share hits), and every executed job registers in the
//! same run ledger `rmt3d status` / `rmt3d report` read.
//!
//! The client side keeps stdout script-friendly: `submit` prints the
//! job id (or, with `--wait`, the same result lines `rmt3d sweep`
//! prints — byte-identical across cold and warm runs); `jobs`,
//! `cancel`, and `shutdown` print the server's raw JSON response line;
//! `watch` prints the raw event stream. Human chatter goes to stderr.

use crate::args::Args;
use crate::fail;
use crate::runctl::DEFAULT_RUNS_ROOT;
use rmt3d_serve::client::{self, DEFAULT_ADDR};
use rmt3d_serve::{serve, ServeOptions};
use rmt3d_sweep::codec;
use rmt3d_telemetry::json::JsonValue;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

fn addr_opt(a: &mut Args) -> Result<String, String> {
    Ok(a.opt("--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()))
}

/// `rmt3d serve [--listen ADDR] [--state-dir DIR] [--out-dir DIR]
/// [--jobs N] [--cache-max-bytes N] [--runs-root DIR] [--no-ledger]
/// [--quiet]`: run the job daemon until a shutdown request drains it.
pub fn run_serve_command(mut a: Args) -> ExitCode {
    let listen = match a.opt("--listen") {
        Ok(l) => l.unwrap_or_else(|| DEFAULT_ADDR.into()),
        Err(e) => return fail(&e),
    };
    let state_dir = match a.opt("--state-dir") {
        Ok(d) => PathBuf::from(d.unwrap_or_else(|| "target/serve".into())),
        Err(e) => return fail(&e),
    };
    let cache_dir = match a.opt("--out-dir") {
        Ok(d) => PathBuf::from(d.unwrap_or_else(|| "target/sweep-cache".into())),
        Err(e) => return fail(&e),
    };
    let workers = match a.parsed::<usize>("--jobs") {
        Ok(Some(0)) => return fail("--jobs must be at least 1"),
        Ok(Some(n)) => n,
        Ok(None) => 0, // auto: one worker per available core
        Err(e) => return fail(&e),
    };
    let cache_max_bytes = match a.parsed::<u64>("--cache-max-bytes") {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let runs_root = match a.opt("--runs-root") {
        Ok(r) => PathBuf::from(r.unwrap_or_else(|| DEFAULT_RUNS_ROOT.into())),
        Err(e) => return fail(&e),
    };
    let no_ledger = a.flag("--no-ledger");
    let quiet = a.flag("--quiet");
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => return fail(&format!("cannot listen on {listen}: {e}")),
    };
    let opts = ServeOptions {
        state_dir,
        cache_dir,
        workers,
        cache_max_bytes,
        runs_root: (!no_ledger).then_some(runs_root),
        quiet,
    };
    match serve(listener, opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn spec_from_flags(a: &mut Args, kind: &str) -> Result<String, String> {
    if let Some(spec) = a.opt("--spec")? {
        return Ok(spec);
    }
    fn names(out: &mut String, key: &str, list: &str) {
        out.push_str(&format!("\"{key}\":"));
        if list == "all" {
            out.push_str("\"all\"");
            return;
        }
        out.push('[');
        for (i, name) in list.split(',').enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", name.trim()));
        }
        out.push(']');
    }
    let mut fields: Vec<String> = Vec::new();
    let axis = |key: &str, list: Option<String>| {
        list.map(|list| {
            let mut s = String::new();
            names(&mut s, key, &list);
            s
        })
    };
    match kind {
        "sweep" => {
            fields.extend(axis("models", a.opt("--models")?));
            fields.extend(axis("benchmarks", a.opt("--benchmarks")?));
            if let Some(n) = a.parsed::<u64>("--instructions")? {
                fields.push(format!("\"instructions\":{n}"));
            }
        }
        _ => {
            fields.extend(axis("sites", a.opt("--sites")?));
            fields.extend(axis("benchmarks", a.opt("--benchmarks")?));
            if let Some(n) = a.parsed::<u64>("--faults-per-site")? {
                fields.push(format!("\"faults_per_site\":{n}"));
            }
            if let Some(n) = a.parsed::<u64>("--seed")? {
                fields.push(format!("\"seed\":{n}"));
            }
            if let Some(n) = a.parsed::<u64>("--instructions")? {
                fields.push(format!("\"instructions\":{n}"));
            }
        }
    }
    Ok(format!("{{{}}}", fields.join(",")))
}

/// `rmt3d submit [--addr A] [--kind sweep|campaign] [--priority N]
/// [--spec JSON | axis flags] [--wait] [--quiet]`: enqueue a job on a
/// running daemon. Prints the job id; with `--wait`, streams progress
/// to stderr and prints the job's results to stdout when it finishes.
pub fn run_submit_command(mut a: Args) -> ExitCode {
    let addr = match addr_opt(&mut a) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let kind = match a.opt("--kind") {
        Ok(k) => k.unwrap_or_else(|| "sweep".into()),
        Err(e) => return fail(&e),
    };
    let priority = match a.parsed::<u64>("--priority") {
        Ok(p) => p.unwrap_or(0),
        Err(e) => return fail(&e),
    };
    let spec = match spec_from_flags(&mut a, &kind) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let wait = a.flag("--wait");
    let quiet = a.flag("--quiet");
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let resp = match client::request(&addr, &client::submit_line(&kind, &spec, priority)) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let job = resp
        .get("job")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let deduped = resp.get("deduped").and_then(JsonValue::as_bool) == Some(true);
    if !quiet {
        eprintln!(
            "submit: {job} {} ({} pool items, spec {})",
            if deduped {
                "joined (identical live job)"
            } else {
                "queued"
            },
            resp.get("total_jobs")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            resp.get("spec_hash")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
        );
    }
    if !wait {
        println!("{job}");
        return ExitCode::SUCCESS;
    }
    let final_state = match wait_for(&addr, &job, quiet) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    match final_state.as_str() {
        "done" | "failed" => {}
        other => return fail(&format!("job {job} ended {other} before completing")),
    }
    let code = print_results(&addr, &job);
    if final_state == "failed" {
        return ExitCode::FAILURE;
    }
    code
}

/// Streams the job's watch events to stderr until the terminal
/// `job_done` line; returns the job's final state.
fn wait_for(addr: &str, job: &str, quiet: bool) -> Result<String, String> {
    let stream = client::watch(addr, job)?;
    for event in stream {
        let v = event?;
        if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
            return Err(v
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("server reported an error")
                .to_string());
        }
        let kind = v.get("event").and_then(JsonValue::as_str).unwrap_or("");
        if kind == "job_done" {
            let state = v
                .get("state")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string();
            if !state_is_terminal(&state) {
                return Err(format!(
                    "daemon drained before job {job} ran (still {state}; it will resume on restart)"
                ));
            }
            return Ok(state);
        }
        if !quiet {
            // Raw forwarded telemetry: same line format as --trace-out.
            eprintln!("{}", render_line(&v));
        }
    }
    Err(format!("watch stream for {job} ended unexpectedly"))
}

fn state_is_terminal(state: &str) -> bool {
    matches!(state, "done" | "failed" | "cancelled")
}

fn render_line(v: &JsonValue) -> String {
    // The daemon already sends compact single-line JSON; re-rendering
    // key fields keeps the stderr stream greppable without a decoder.
    let kind = v.get("event").and_then(JsonValue::as_str).unwrap_or("?");
    let label = v.get("label").and_then(JsonValue::as_str).unwrap_or("");
    let job = v.get("job").and_then(JsonValue::as_u64);
    let total = v.get("total").and_then(JsonValue::as_u64);
    match (job, total) {
        (Some(j), Some(t)) => format!("watch: {kind} [{}/{t}] {label}", j + 1),
        _ => format!("watch: {kind} {label}"),
    }
}

/// Fetches and prints a finished job's results in `rmt3d sweep`'s
/// stdout format (or a campaign's JSONL report verbatim).
fn print_results(addr: &str, job: &str) -> ExitCode {
    let resp = match client::request(addr, &client::job_line("result", job)) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if let Some(report) = resp.get("report").and_then(JsonValue::as_str) {
        print!("{report}");
        return ExitCode::SUCCESS;
    }
    let Some(JsonValue::Arr(results)) = resp.get("results") else {
        return fail("malformed result response");
    };
    let mut missing = 0usize;
    for item in results {
        let label = item.get("label").and_then(JsonValue::as_str).unwrap_or("?");
        let encoded = item
            .get("encoded")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        match codec::decode(encoded) {
            Ok(r) => println!(
                "{label:28} IPC {:.3}  L2 {:5.2} misses/10K  checker {:.2} f",
                r.ipc(),
                r.l2_misses_per_10k(),
                r.mean_checker_fraction,
            ),
            Err(_) => {
                missing += 1;
                println!("{label:28} NO CACHED RESULT");
            }
        }
    }
    if missing > 0 {
        eprintln!("submit: {missing} job(s) had no cached result");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `rmt3d jobs [--addr A]`: print the daemon's job listing as one JSON
/// line (strict JSON; pipe through a formatter to pretty-print).
pub fn run_jobs_command(mut a: Args) -> ExitCode {
    one_shot(a.opt("--addr"), a, |addr| {
        client::request_raw(addr, "{\"op\":\"jobs\"}")
    })
}

/// `rmt3d cancel JOB [--addr A]`: cancel a queued or in-flight job.
pub fn run_cancel_command(mut a: Args) -> ExitCode {
    let addr = a.opt("--addr");
    let Some(job) = a.positional() else {
        return fail("cancel requires a job id");
    };
    one_shot(addr, a, move |addr| {
        client::request_raw(addr, &client::job_line("cancel", &job))
    })
}

/// `rmt3d stats [--addr A]`: print the daemon's live metrics snapshot
/// as one JSON line (strict JSON; pipe through a formatter to
/// pretty-print).
pub fn run_stats_command(mut a: Args) -> ExitCode {
    one_shot(a.opt("--addr"), a, |addr| {
        client::request_raw(addr, "{\"op\":\"stats\"}")
    })
}

/// `rmt3d top [--watch] [--interval MS] [--addr A]`: a one-screen
/// human view of the daemon's `stats` snapshot; `--watch` redraws at
/// the polling interval (default 1000 ms) until interrupted.
pub fn run_top_command(mut a: Args) -> ExitCode {
    let addr = match addr_opt(&mut a) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let watch = a.flag("--watch");
    let interval_ms = match a.parsed::<u64>("--interval") {
        Ok(Some(0)) => return fail("--interval must be at least 1 millisecond"),
        Ok(Some(_)) if !watch => return fail("--interval requires --watch"),
        Ok(Some(ms)) => ms,
        Ok(None) => 1000,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    loop {
        let resp = match client::request(&addr, "{\"op\":\"stats\"}") {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        if watch {
            // Clear the screen between frames, watch(1)-style.
            print!("\x1b[2J\x1b[H");
        }
        print_top(&addr, &resp);
        if !watch {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Renders one `stats` snapshot as the `top` screen.
fn print_top(addr: &str, v: &JsonValue) {
    let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    println!(
        "rmt3d daemon {addr}\n\
         queue   depth {} ({} queued, {} running)",
        u("queue_depth"),
        u("queued"),
        u("running"),
    );
    println!(
        "jobs    {} done, {} failed, {} cancelled",
        u("done"),
        u("failed"),
        u("cancelled"),
    );
    println!(
        "clients {} open ({} total), {} watchers",
        u("connections"),
        u("connections_total"),
        u("watchers"),
    );
    let hits = u("cache_hits");
    let misses = u("cache_misses");
    let probes = hits + misses;
    let rate = if probes == 0 {
        String::from("-")
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / probes as f64)
    };
    println!(
        "cache   {hits} hits / {misses} misses ({rate}), {} entries, {} bytes, {} evicted",
        u("cache_entries"),
        u("cache_bytes"),
        u("cache_evictions"),
    );
    if u("cache_verify_failures") > 0 {
        println!(
            "warning {} cache verify failures",
            u("cache_verify_failures")
        );
    }
    if u("metrics_write_errors") > 0 {
        println!(
            "warning {} metrics/artifact write failures — telemetry may be incomplete",
            u("metrics_write_errors")
        );
    }
    // Latency histograms from the embedded cumulative metrics document.
    if let Some(JsonValue::Obj(hists)) = v.get("metrics").and_then(|m| m.get("hist")) {
        let mut printed_header = false;
        for (name, h) in hists {
            if !name.starts_with("daemon_") {
                continue;
            }
            let samples = h.get("samples").and_then(JsonValue::as_u64).unwrap_or(0);
            if samples == 0 {
                continue;
            }
            if !printed_header {
                println!("latency");
                printed_header = true;
            }
            let mean = h.get("mean").and_then(JsonValue::as_f64).unwrap_or(0.0);
            println!("  {name:28} {samples:>7} jobs  mean {mean:.1} ms");
        }
    }
}

/// `rmt3d shutdown [--addr A]`: ask the daemon to drain and exit.
pub fn run_shutdown_command(mut a: Args) -> ExitCode {
    one_shot(a.opt("--addr"), a, |addr| {
        client::request_raw(addr, "{\"op\":\"shutdown\"}")
    })
}

fn one_shot(
    addr: Result<Option<String>, String>,
    a: Args,
    req: impl FnOnce(&str) -> Result<String, String>,
) -> ExitCode {
    let addr = match addr {
        Ok(a) => a.unwrap_or_else(|| DEFAULT_ADDR.into()),
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let line = match req(&addr) {
        Ok(l) => l,
        Err(e) => return fail(&e),
    };
    println!("{line}");
    let ok = rmt3d_telemetry::json::parse(&line)
        .ok()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        == Some(true);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rmt3d watch JOB [--addr A]`: stream a job's raw event lines to
/// stdout until it reaches a terminal state. Exit code reflects the
/// final state.
pub fn run_watch_command(mut a: Args) -> ExitCode {
    let addr = match addr_opt(&mut a) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(job) = a.positional() else {
        return fail("watch requires a job id");
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let stream = match client::watch(&addr, &job) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let mut final_state: Option<String> = None;
    for event in stream {
        let v = match event {
            Ok(v) => v,
            Err(e) => return fail(&e),
        };
        if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
            return fail(
                v.get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("server reported an error"),
            );
        }
        println!("{}", raw_line(&v));
        if v.get("event").and_then(JsonValue::as_str) == Some("job_done") {
            final_state = v
                .get("state")
                .and_then(JsonValue::as_str)
                .map(str::to_string);
            break;
        }
    }
    match final_state.as_deref() {
        Some("done") => ExitCode::SUCCESS,
        Some(_) => ExitCode::FAILURE,
        None => fail(&format!("watch stream for {job} ended unexpectedly")),
    }
}

/// Re-renders a parsed event compactly. The daemon's lines are already
/// compact JSON, but the client parses them for error detection, so it
/// re-renders rather than buffering both forms.
fn raw_line(v: &JsonValue) -> String {
    fn render(v: &JsonValue, out: &mut String) {
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => {
                out.push_str(&rmt3d_serve::proto::json_str(s));
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&rmt3d_serve::proto::json_str(k));
                    out.push(':');
                    render(val, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    render(v, &mut out);
    out
}
