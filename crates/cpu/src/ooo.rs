//! Cycle-level out-of-order leading core (paper Table 1 configuration).
//!
//! Trace-driven: micro-ops stream in from a [`TraceGenerator`] and flow
//! through fetch → dispatch → issue → execute → commit, constrained by
//! the ROB, issue queues, LSQ, functional units, the branch predictor and
//! the cache hierarchy. Branch mispredictions block fetch until the
//! branch resolves (the standard trace-driven redirect model: wrong-path
//! work is not simulated, its delay is).

use crate::activity::ActivityCounters;
use crate::bpred::CombinedPredictor;
use crate::commit::CommittedOp;
use crate::config::CoreConfig;
use rmt3d_cache::CacheHierarchy;
use rmt3d_telemetry::{emit, CpiComponent, CpiStack, Event, NullSink, Sink};
use rmt3d_workload::{MicroOp, OpClass, TraceGenerator};

/// Completion-time ring capacity. Must exceed `rob_size + ifq_size +
/// max dependence distance (63)`; validated in [`OooCore::new`].
const RING: usize = 256;
/// Sentinel: result not yet available.
const PENDING: u64 = u64::MAX;

/// Per-cycle functional-unit issue budget.
#[derive(Debug, Clone, Copy)]
struct FuBudget {
    int_alu: u32,
    int_mul: u32,
    fp_alu: u32,
    fp_mul: u32,
    total: u32,
}

impl FuBudget {
    fn new(cfg: &CoreConfig) -> FuBudget {
        FuBudget {
            int_alu: cfg.int_alu,
            int_mul: cfg.int_mul,
            fp_alu: cfg.fp_alu,
            fp_mul: cfg.fp_mul,
            total: cfg.dispatch_width, // global issue width
        }
    }

    /// Tries to reserve a unit for `kind`; returns false when exhausted.
    fn take(&mut self, kind: OpClass) -> bool {
        if self.total == 0 {
            return false;
        }
        let slot = match kind {
            // Loads, stores and branches use an integer ALU for address
            // generation / condition evaluation.
            OpClass::IntAlu | OpClass::Load | OpClass::Store | OpClass::Branch => &mut self.int_alu,
            OpClass::IntMul => &mut self.int_mul,
            OpClass::FpAlu => &mut self.fp_alu,
            OpClass::FpMul => &mut self.fp_mul,
        };
        if *slot == 0 {
            false
        } else {
            *slot -= 1;
            self.total -= 1;
            true
        }
    }
}

/// The out-of-order leading core.
///
/// # Examples
///
/// ```
/// use rmt3d_cpu::{CoreConfig, OooCore};
/// use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
/// use rmt3d_workload::{Benchmark, TraceGenerator};
///
/// let mut core = OooCore::new(
///     CoreConfig::leading_ev7_like(),
///     TraceGenerator::new(Benchmark::Gzip.profile()),
///     CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
/// );
/// let mut out = Vec::new();
/// for _ in 0..1000 {
///     core.step_cycle(&mut out);
/// }
/// assert!(core.activity().committed > 0);
/// ```
#[derive(Debug)]
pub struct OooCore<S: Sink = NullSink> {
    cfg: CoreConfig,
    trace: TraceGenerator,
    caches: CacheHierarchy,
    bpred: CombinedPredictor,
    cycle: u64,
    /// Fetch stalled until this cycle (I-cache miss).
    fetch_blocked_until: u64,
    /// Sequence number of an unresolved mispredicted branch.
    redirect_seq: Option<u64>,
    /// Struct-of-arrays pipeline state: op payloads live in one ring
    /// indexed by `seq % RING`, written once at fetch and read in place
    /// until commit. Three monotone sequence cursors partition the ring:
    /// the ROB is `commit_head..dispatch_head`, the fetch queue is
    /// `dispatch_head..fetch_tail`.
    ops: Box<[MicroOp; RING]>,
    commit_head: u64,
    dispatch_head: u64,
    fetch_tail: u64,
    /// Sequence numbers of dispatched-but-unissued ops, in program
    /// order: the issue stage's select window. Entries leave on issue,
    /// so issue cost scales with waiting ops, not ROB size.
    unissued: Vec<u64>,
    iq_int: u32,
    iq_fp: u32,
    lsq: u32,
    /// Completion cycle per ring slot; `PENDING` from fetch until issue,
    /// so `complete_at[slot] != PENDING` doubles as the issued flag.
    complete_at: Box<[u64; RING]>,
    regfile: [u64; 64],
    commit_stalled: bool,
    activity: ActivityCounters,
    cpi: CpiStack,
    last_fetch_line: u64,
    sink: S,
}

impl OooCore {
    /// Creates a core over a trace and cache hierarchy, with telemetry
    /// disabled ([`NullSink`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (the dependence ring
    /// requires `rob + ifq + 63 < 256`).
    pub fn new(cfg: CoreConfig, trace: TraceGenerator, caches: CacheHierarchy) -> OooCore {
        OooCore::with_sink(cfg, trace, caches, NullSink)
    }
}

impl<S: Sink> OooCore<S> {
    /// Creates a core that reports telemetry events to `sink` (commit
    /// back-pressure transitions, as [`Event::Counter`] samples).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (the dependence ring
    /// requires `rob + ifq + 63 < 256`).
    pub fn with_sink(
        cfg: CoreConfig,
        trace: TraceGenerator,
        caches: CacheHierarchy,
        sink: S,
    ) -> OooCore<S> {
        cfg.validate().expect("invalid core configuration");
        assert!(
            (cfg.rob_size + cfg.ifq_size + 63) < RING as u32,
            "dependence ring too small for this window"
        );
        OooCore {
            cfg,
            trace,
            caches,
            bpred: CombinedPredictor::table1(),
            cycle: 0,
            fetch_blocked_until: 0,
            redirect_seq: None,
            ops: Box::new([MicroOp::EMPTY; RING]),
            commit_head: 0,
            dispatch_head: 0,
            fetch_tail: 0,
            unissued: Vec::with_capacity(cfg.rob_size as usize),
            iq_int: 0,
            iq_fp: 0,
            lsq: 0,
            complete_at: Box::new([0; RING]),
            regfile: [0; 64],
            commit_stalled: false,
            activity: ActivityCounters::default(),
            cpi: CpiStack::new(),
            last_fetch_line: u64::MAX,
            sink,
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Re-order buffer occupancy (entries), for interval sampling.
    pub fn rob_occupancy(&self) -> u32 {
        (self.dispatch_head - self.commit_head) as u32
    }

    /// Integer issue-queue occupancy (entries).
    pub fn iq_int_occupancy(&self) -> u32 {
        self.iq_int
    }

    /// Floating-point issue-queue occupancy (entries).
    pub fn iq_fp_occupancy(&self) -> u32 {
        self.iq_fp
    }

    /// Load/store-queue occupancy (entries).
    pub fn lsq_occupancy(&self) -> u32 {
        self.lsq
    }

    /// Accumulated activity counters.
    pub fn activity(&self) -> &ActivityCounters {
        &self.activity
    }

    /// CPI stack: every cycle attributed to one stall class. Only
    /// populated when the sink is enabled (under [`NullSink`] the
    /// per-cycle classification compiles out and the stack stays zero);
    /// when populated, the components sum exactly to
    /// [`ActivityCounters::cycles`].
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.cpi
    }

    /// The cache hierarchy (for L2 statistics and per-bank power maps).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// Mutable cache hierarchy access (e.g. to rescale memory latency
    /// under DVFS).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.caches
    }

    /// Branch predictor statistics.
    pub fn bpred(&self) -> &CombinedPredictor {
        &self.bpred
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Applies or releases commit back-pressure (RVQ/StB full). While
    /// stalled the core stops retiring — this is how an over-throttled
    /// checker slows the leader (paper §4 Discussion).
    pub fn set_commit_stall(&mut self, stalled: bool) {
        if stalled != self.commit_stalled {
            let cycle = self.cycle;
            emit(&mut self.sink, || Event::Counter {
                name: "leader_commit_stall",
                cycle,
                value: if stalled { 1.0 } else { 0.0 },
            });
        }
        self.commit_stalled = stalled;
    }

    /// Injects a single-bit flip into the architectural register file
    /// (leading-core transient-fault model).
    pub fn flip_regfile_bit(&mut self, reg: u8, bit: u8) {
        self.regfile[reg as usize % 64] ^= 1u64 << (bit % 64);
    }

    /// Read-only view of the architectural register file.
    pub fn regfile(&self) -> &[u64; 64] {
        &self.regfile
    }

    /// Overwrites the architectural register file — the recovery action:
    /// the leader restarts from the trailer's checked state (§2).
    pub fn restore_regfile(&mut self, rf: &[u64; 64]) {
        self.regfile = *rf;
    }

    /// Resets statistics after warm-up, keeping microarchitectural state.
    pub fn reset_stats(&mut self) {
        self.activity = ActivityCounters::default();
        self.cpi = CpiStack::new();
        self.bpred.reset_stats();
        self.caches.reset_stats();
    }

    /// Warms the caches with the workload's hot/warm/code regions and
    /// clears statistics. Call once before measuring: it stands in for
    /// the billions of instructions a SimPoint window assumes have
    /// already run (§3.1). Follow with a short instruction warm-up to
    /// train the branch predictor.
    pub fn prefill_caches(&mut self) {
        let regions = rmt3d_workload::MemoryRegions::of(self.trace.profile());
        self.caches
            .prefill_data_region(regions.warm.0, regions.warm.1);
        self.caches
            .prefill_data_region(regions.hot.0, regions.hot.1);
        self.caches
            .prefill_code_region(regions.code.0, regions.code.1);
        self.caches.reset_stats();
    }

    /// Advances one cycle; committed instructions are appended to `out`.
    /// Returns the number committed this cycle.
    pub fn step_cycle(&mut self, out: &mut Vec<CommittedOp>) -> u32 {
        let committed = self.do_commit(out);
        self.do_issue();
        self.do_dispatch();
        self.do_fetch();
        // Cycle attribution is profiling-only: gated on the sink so the
        // NullSink build stays identical to the uninstrumented core.
        if S::ENABLED {
            self.cpi.add(self.classify_cycle(committed));
        }
        self.cycle += 1;
        self.activity.cycles += 1;
        if S::ENABLED {
            debug_assert_eq!(
                self.cpi.total(),
                self.activity.cycles,
                "CPI stack must sum to total cycles"
            );
        }
        committed
    }

    /// Attributes the cycle that just executed to one stall class
    /// (first matching cause wins, ordered from the commit end of the
    /// pipe backwards).
    fn classify_cycle(&self, committed: u32) -> CpiComponent {
        if committed > 0 {
            return CpiComponent::BaseIssue;
        }
        if self.commit_stalled {
            return CpiComponent::CheckerStall;
        }
        if self.commit_head == self.dispatch_head {
            // Empty window: blame whatever is holding fetch back.
            if self.redirect_seq.is_some() {
                CpiComponent::BranchRedirect
            } else if self.cycle < self.fetch_blocked_until {
                CpiComponent::IcacheMiss
            } else {
                CpiComponent::FetchStarved
            }
        } else {
            let slot = (self.commit_head % RING as u64) as usize;
            if self.complete_at[slot] != PENDING {
                // Commit waits on the head's execution; loads mean
                // an outstanding D-cache access, the rest is plain
                // execute latency (dependence-bound).
                if self.ops[slot].kind == OpClass::Load {
                    CpiComponent::DcacheMiss
                } else {
                    CpiComponent::BaseIssue
                }
            } else if self.rob_occupancy() >= self.cfg.rob_size
                || self.iq_int >= self.cfg.iq_int_size
                || self.iq_fp >= self.cfg.iq_fp_size
                || self.lsq >= self.cfg.lsq_size
            {
                CpiComponent::StructFull
            } else {
                CpiComponent::BaseIssue
            }
        }
    }

    fn do_commit(&mut self, out: &mut Vec<CommittedOp>) -> u32 {
        if self.commit_stalled {
            self.activity.commit_stall_cycles += 1;
            return 0;
        }
        let mut n = 0;
        while n < self.cfg.commit_width {
            if self.commit_head == self.dispatch_head {
                break;
            }
            let slot = (self.commit_head % RING as u64) as usize;
            // PENDING is `u64::MAX`, so one comparison covers both "not
            // yet issued" and "issued but not yet complete".
            if self.complete_at[slot] > self.cycle {
                break;
            }
            let op = self.ops[slot];
            self.commit_head += 1;
            // Architectural value semantics (in commit order).
            let s1 = op.src1_reg.map_or(0, |r| self.regfile[r.index() as usize]);
            let s2 = op.src2_reg.map_or(0, |r| self.regfile[r.index() as usize]);
            let (result, mem_value) = match op.kind {
                OpClass::Load => {
                    let v = load_memory_value(op.mem_addr);
                    (v, v)
                }
                OpClass::Store => {
                    // Stores write the data operand; the write is charged
                    // to the D-cache at commit.
                    self.caches.data_access(op.mem_addr, true);
                    self.activity.dcache_accesses += 1;
                    (0, 0)
                }
                OpClass::Branch => (0, 0),
                _ => (op.compute_result(s1, s2), 0),
            };
            if let Some(d) = op.dest {
                self.regfile[d.index() as usize] = result;
                self.activity.regfile_writes += 1;
            }
            if op.kind.is_memory() {
                self.lsq -= 1;
            }
            self.activity.committed += 1;
            self.caches.add_instructions(1);
            out.push(CommittedOp {
                op,
                result,
                src1_value: s1,
                src2_value: s2,
                mem_value,
                commit_cycle: self.cycle,
            });
            n += 1;
        }
        n
    }

    fn do_issue(&mut self) {
        if self.unissued.is_empty() {
            return;
        }
        let mut budget = FuBudget::new(&self.cfg);
        let cycle = self.cycle;
        // Oldest-first select over the waiting window; ops that issue
        // are compacted out of the list in place.
        let len = self.unissued.len();
        let mut keep = 0;
        let mut i = 0;
        while i < len {
            if budget.total == 0 {
                self.unissued.copy_within(i..len, keep);
                keep += len - i;
                break;
            }
            let seq = self.unissued[i];
            let slot = (seq % RING as u64) as usize;
            let (ready, kind) = {
                let op = &self.ops[slot];
                let ready = Self::operands_ready(&self.complete_at, op, cycle);
                (ready, op.kind)
            };
            if !ready || !budget.take(kind) {
                self.unissued[keep] = seq;
                keep += 1;
                i += 1;
                continue;
            }
            let complete = match kind {
                OpClass::Load => {
                    let addr = self.ops[slot].mem_addr;
                    let acc = self.caches.data_access(addr, false);
                    self.activity.dcache_accesses += 1;
                    cycle + 1 + acc.cycles as u64
                }
                _ => cycle + kind.execute_latency() as u64,
            };
            self.complete_at[slot] = complete;
            let op = &self.ops[slot];
            // Free the issue-queue slot.
            if op.kind.is_fp() {
                self.iq_fp -= 1;
            } else {
                self.iq_int -= 1;
            }
            self.activity.issued += 1;
            self.activity.regfile_reads +=
                op.src1_reg.is_some() as u64 + op.src2_reg.is_some() as u64;
            self.activity.bypass_transfers += 1;
            match kind {
                OpClass::IntMul => self.activity.int_mul_ops += 1,
                OpClass::FpAlu => self.activity.fp_alu_ops += 1,
                OpClass::FpMul => self.activity.fp_mul_ops += 1,
                _ => self.activity.int_alu_ops += 1,
            }
            if kind.is_memory() {
                self.activity.lsq_accesses += 1;
            }
            i += 1;
        }
        self.unissued.truncate(keep);
    }

    fn operands_ready(ring: &[u64; RING], op: &MicroOp, cycle: u64) -> bool {
        for dist in [op.src1_dist, op.src2_dist].into_iter().flatten() {
            let producer = op.seq - dist.get() as u64;
            if ring[(producer % RING as u64) as usize] > cycle {
                return false;
            }
        }
        true
    }

    fn do_dispatch(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            if self.rob_occupancy() >= self.cfg.rob_size {
                break;
            }
            if self.dispatch_head == self.fetch_tail {
                break;
            }
            let kind = self.ops[(self.dispatch_head % RING as u64) as usize].kind;
            // Structural checks before consuming.
            if kind.is_fp() {
                if self.iq_fp >= self.cfg.iq_fp_size {
                    break;
                }
            } else if self.iq_int >= self.cfg.iq_int_size {
                break;
            }
            if kind.is_memory() && self.lsq >= self.cfg.lsq_size {
                break;
            }
            if kind.is_fp() {
                self.iq_fp += 1;
            } else {
                self.iq_int += 1;
            }
            if kind.is_memory() {
                self.lsq += 1;
            }
            // The ring slot already reads PENDING (marked at fetch), so
            // there is no ROB entry to fill: dispatch just advances the
            // cursor into the issue window.
            self.unissued.push(self.dispatch_head);
            self.dispatch_head += 1;
            self.activity.dispatched += 1;
        }
    }

    fn do_fetch(&mut self) {
        // A pending mispredict blocks fetch until the branch resolves
        // plus the front-end refill depth.
        if let Some(seq) = self.redirect_seq {
            let done = self.complete_at[(seq % RING as u64) as usize];
            if done != PENDING && self.cycle >= done + self.cfg.frontend_refill as u64 {
                self.redirect_seq = None;
            } else {
                return;
            }
        }
        if self.cycle < self.fetch_blocked_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if (self.fetch_tail - self.dispatch_head) as u32 >= self.cfg.ifq_size {
                break;
            }
            // Decode straight into the op ring: the payload is written
            // once here and read in place through dispatch, issue and
            // commit.
            let slot = (self.fetch_tail % RING as u64) as usize;
            self.ops[slot] = self.trace.next_op();
            let op = &self.ops[slot];
            debug_assert_eq!(op.seq, self.fetch_tail);
            self.fetch_tail += 1;
            // Mark the slot pending as soon as the op exists, so stale
            // ring contents can never look "ready".
            self.complete_at[slot] = PENDING;
            // I-cache: one access per new line.
            let line = op.pc / 64;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                self.activity.icache_accesses += 1;
                let pc = op.pc;
                let stall = self.caches.fetch(pc);
                if stall > 0 {
                    self.fetch_blocked_until = self.cycle + stall as u64;
                }
            }
            self.activity.fetched += 1;
            let op = &self.ops[slot];
            if let Some(b) = op.branch() {
                self.activity.bpred_accesses += 1;
                let pred = self.bpred.predict_and_train(op.pc, b.taken);
                if pred != b.taken {
                    self.activity.branch_mispredicts += 1;
                    self.redirect_seq = Some(op.seq);
                    break;
                }
                if b.taken {
                    // A taken branch ends the fetch group.
                    break;
                }
            }
            if self.cycle < self.fetch_blocked_until {
                break;
            }
        }
    }

    /// Runs until `n` instructions have committed (no RMT coupling);
    /// returns the committed stream length actually produced. Useful for
    /// stand-alone performance experiments (Fig. 6).
    pub fn run_instructions(&mut self, n: u64) -> u64 {
        let mut sink = Vec::with_capacity(8);
        let start = self.activity.committed;
        while self.activity.committed - start < n {
            sink.clear();
            self.step_cycle(&mut sink);
        }
        self.activity.committed - start
    }
}

/// Deterministic "memory contents" function shared with the LVQ checks:
/// the value a load observes at `addr`.
#[inline]
pub fn load_memory_value(addr: u64) -> u64 {
    let mut z = addr.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xdead_beef_cafe_f00d;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_cache::{NucaLayout, NucaPolicy};
    use rmt3d_workload::Benchmark;

    fn core(b: Benchmark) -> OooCore {
        OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        )
    }

    #[test]
    fn cpi_stack_sums_to_cycles_under_enabled_sink() {
        let mut c = OooCore::with_sink(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Mcf.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
            rmt3d_telemetry::RecordingSink::new(),
        );
        let mut out = Vec::new();
        for _ in 0..20_000 {
            c.step_cycle(&mut out);
        }
        assert_eq!(c.cpi_stack().total(), c.activity().cycles);
        assert!(
            c.cpi_stack().get(CpiComponent::BaseIssue) > 0,
            "a real run commits"
        );
        // mcf is memory-bound: some cycles must be charged to the
        // D-cache with the commit-stall heuristic.
        assert!(c.cpi_stack().get(CpiComponent::DcacheMiss) > 0);
        c.reset_stats();
        assert!(c.cpi_stack().is_empty());
    }

    #[test]
    fn cpi_stack_stays_zero_under_null_sink() {
        let mut c = core(Benchmark::Gzip);
        c.run_instructions(5_000);
        assert!(
            c.cpi_stack().is_empty(),
            "NullSink must not pay for classification"
        );
    }

    #[test]
    fn commits_in_program_order() {
        let mut c = core(Benchmark::Gzip);
        let mut out = Vec::new();
        for _ in 0..5000 {
            c.step_cycle(&mut out);
        }
        for w in out.windows(2) {
            assert_eq!(w[1].op.seq, w[0].op.seq + 1, "commit must be in order");
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn ipc_is_plausible() {
        let mut c = core(Benchmark::Gzip);
        c.prefill_caches();
        c.run_instructions(20_000); // predictor warm-up
        c.reset_stats();
        c.run_instructions(50_000);
        let ipc = c.activity().ipc();
        assert!(ipc > 1.0 && ipc <= 4.0, "gzip steady-state IPC {ipc}");
    }

    #[test]
    fn low_ilp_program_is_slower() {
        let mut a = core(Benchmark::Mcf);
        let mut b = core(Benchmark::Eon);
        a.run_instructions(30_000);
        b.run_instructions(30_000);
        assert!(
            a.activity().ipc() < b.activity().ipc(),
            "mcf {} should trail eon {}",
            a.activity().ipc(),
            b.activity().ipc()
        );
    }

    #[test]
    fn commit_stall_blocks_retirement() {
        let mut c = core(Benchmark::Gzip);
        let mut out = Vec::new();
        for _ in 0..200 {
            c.step_cycle(&mut out);
        }
        let before = c.activity().committed;
        c.set_commit_stall(true);
        for _ in 0..100 {
            c.step_cycle(&mut out);
        }
        assert_eq!(c.activity().committed, before);
        assert!(c.activity().commit_stall_cycles >= 100);
        c.set_commit_stall(false);
        for _ in 0..100 {
            c.step_cycle(&mut out);
        }
        assert!(c.activity().committed > before, "commit resumes");
    }

    #[test]
    fn rob_never_overflows() {
        let mut c = core(Benchmark::Mcf);
        let mut out = Vec::new();
        for _ in 0..10_000 {
            c.step_cycle(&mut out);
            assert!(c.rob_occupancy() <= c.cfg.rob_size);
            assert!(c.iq_int <= c.cfg.iq_int_size);
            assert!(c.iq_fp <= c.cfg.iq_fp_size);
            assert!(c.lsq <= c.cfg.lsq_size);
        }
    }

    #[test]
    fn committed_values_are_deterministic() {
        let run = |n: usize| {
            let mut c = core(Benchmark::Twolf);
            let mut out = Vec::new();
            while out.len() < n {
                c.step_cycle(&mut out);
            }
            out.truncate(n);
            out
        };
        assert_eq!(run(2000), run(2000));
    }

    #[test]
    fn loads_carry_load_values_and_stores_store_values() {
        let mut c = core(Benchmark::Vpr);
        let mut out = Vec::new();
        while out.len() < 3000 {
            c.step_cycle(&mut out);
        }
        for co in &out {
            match co.op.kind {
                OpClass::Load => {
                    let v = co.load_value().expect("loads have load values");
                    assert_eq!(v, load_memory_value(co.op.mem().unwrap().addr));
                    assert_eq!(co.result, v);
                }
                OpClass::Store => {
                    assert!(co.store_value().is_some());
                    assert!(co.load_value().is_none());
                }
                _ => assert!(co.load_value().is_none() && co.store_value().is_none()),
            }
        }
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // Compare IPC of a predictable vs unpredictable profile with the
        // same memory behaviour: the predictor must matter.
        use rmt3d_workload::WorkloadProfile;
        let mk = |pred: f64, seed: u64| -> WorkloadProfile {
            let mut p = Benchmark::Gzip.profile();
            p.predictability = pred;
            p.seed = seed;
            p
        };
        let run = |p: WorkloadProfile| {
            let mut c = OooCore::new(
                CoreConfig::leading_ev7_like(),
                TraceGenerator::new(p),
                CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
            );
            c.run_instructions(30_000);
            c.activity().ipc()
        };
        let good = run(mk(0.98, 7));
        let bad = run(mk(0.0, 7));
        assert!(good > bad, "predictable {good} vs random {bad}");
    }

    #[test]
    fn bigger_cache_helps_oversized_working_set() {
        // A hot 8 MB working set fits the 15 MB NUCA but thrashes the
        // 6 MB one. Warm up first so only steady-state misses count.
        let mk = |layout: NucaLayout| {
            let mut p = Benchmark::Mcf.profile();
            p.memory.hot_kb = 8 * 1024;
            p.memory.p_hot = 0.95;
            p.memory.p_warm = 0.04;
            let mut c = OooCore::new(
                CoreConfig::leading_ev7_like(),
                TraceGenerator::new(p),
                CacheHierarchy::new(layout, NucaPolicy::DistributedSets),
            );
            c.prefill_caches();
            c.run_instructions(300_000);
            c.caches().stats().l2_misses
        };
        let small = mk(NucaLayout::two_d_a());
        let large = mk(NucaLayout::three_d_2a());
        assert!(
            (large as f64) < 0.7 * small as f64,
            "15 MB misses {large} should be well below 6 MB misses {small}"
        );
    }
}
