//! Processor models and system configuration.

use rmt3d_cache::{NucaLayout, NucaPolicy};
use rmt3d_floorplan::ChipFloorplan;
use std::fmt;

/// The processor organizations evaluated in the paper (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessorModel {
    /// Single die, 6 MB L2, no checker — the unreliable baseline
    /// customers with low reliability requirements buy.
    TwoDA,
    /// Single large die with checker and 15 MB L2 — the iso-transistor
    /// 2D comparison point.
    TwoD2A,
    /// The proposal: 2d-a die plus a stacked die carrying the checker
    /// and 9 more MB of L2.
    ThreeD2A,
    /// A stacked die carrying only the checker (no extra cache) — used
    /// to isolate cache effects in §3.3 and the inactive-silicon thermal
    /// variant in §3.2.
    ThreeDChecker,
}

impl ProcessorModel {
    /// All four models in the paper's presentation order.
    pub const ALL: [ProcessorModel; 4] = [
        ProcessorModel::TwoDA,
        ProcessorModel::TwoD2A,
        ProcessorModel::ThreeD2A,
        ProcessorModel::ThreeDChecker,
    ];

    /// The paper's name for this model.
    pub fn name(self) -> &'static str {
        match self {
            ProcessorModel::TwoDA => "2d-a",
            ProcessorModel::TwoD2A => "2d-2a",
            ProcessorModel::ThreeD2A => "3d-2a",
            ProcessorModel::ThreeDChecker => "3d-checker",
        }
    }

    /// Whether the model carries a checker core.
    pub fn has_checker(self) -> bool {
        !matches!(self, ProcessorModel::TwoDA)
    }

    /// The NUCA bank layout of this model's L2.
    pub fn nuca_layout(self) -> NucaLayout {
        match self {
            ProcessorModel::TwoDA | ProcessorModel::ThreeDChecker => NucaLayout::two_d_a(),
            ProcessorModel::TwoD2A => NucaLayout::two_d_2a(),
            ProcessorModel::ThreeD2A => NucaLayout::three_d_2a(),
        }
    }

    /// The physical floorplan of this model.
    pub fn floorplan(self) -> ChipFloorplan {
        match self {
            ProcessorModel::TwoDA => ChipFloorplan::two_d_a(),
            ProcessorModel::TwoD2A => ChipFloorplan::two_d_2a(),
            ProcessorModel::ThreeD2A => ChipFloorplan::three_d_2a(),
            ProcessorModel::ThreeDChecker => ChipFloorplan::three_d_checker_only(),
        }
    }
}

impl fmt::Display for ProcessorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown processor-model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError(String);

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown processor model `{}` (expected 2d-a, 2d-2a, 3d-2a or 3d-checker)",
            self.0
        )
    }
}

impl std::error::Error for ParseModelError {}

impl std::str::FromStr for ProcessorModel {
    type Err = ParseModelError;

    fn from_str(s: &str) -> Result<ProcessorModel, ParseModelError> {
        let t = s.trim().to_ascii_lowercase();
        ProcessorModel::ALL
            .into_iter()
            .find(|m| m.name() == t)
            .ok_or_else(|| ParseModelError(s.to_string()))
    }
}

/// How much simulation to spend per data point.
///
/// The paper simulates 100M-instruction SimPoint windows on a 50×50
/// thermal grid; [`RunScale::paper`] approaches that regime,
/// [`RunScale::quick`] is for tests and iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Instructions of predictor/DFS warm-up before measurement (caches
    /// are warmed analytically via prefill).
    pub warmup_instructions: u64,
    /// Measured instructions per benchmark.
    pub instructions: u64,
    /// Thermal grid resolution.
    pub thermal_grid: usize,
}

impl RunScale {
    /// Full-scale runs for the benchmark harness.
    pub fn paper() -> RunScale {
        RunScale {
            warmup_instructions: 100_000,
            instructions: 1_000_000,
            thermal_grid: 50,
        }
    }

    /// Fast runs for tests.
    pub fn quick() -> RunScale {
        RunScale {
            warmup_instructions: 20_000,
            instructions: 120_000,
            thermal_grid: 25,
        }
    }
}

/// NUCA policy re-export for configuration convenience.
pub type L2Policy = NucaPolicy;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_inventory() {
        assert_eq!(ProcessorModel::ALL.len(), 4);
        assert!(!ProcessorModel::TwoDA.has_checker());
        for m in [
            ProcessorModel::TwoD2A,
            ProcessorModel::ThreeD2A,
            ProcessorModel::ThreeDChecker,
        ] {
            assert!(m.has_checker());
        }
    }

    #[test]
    fn cache_capacities_follow_the_paper() {
        assert_eq!(ProcessorModel::TwoDA.nuca_layout().bank_count(), 6);
        assert_eq!(ProcessorModel::TwoD2A.nuca_layout().bank_count(), 15);
        assert_eq!(ProcessorModel::ThreeD2A.nuca_layout().bank_count(), 15);
        // 3d-checker has no extra cache: same 6 MB as the baseline.
        assert_eq!(ProcessorModel::ThreeDChecker.nuca_layout().bank_count(), 6);
    }

    #[test]
    fn floorplans_match_models() {
        assert_eq!(ProcessorModel::TwoDA.floorplan().dies.len(), 1);
        assert_eq!(ProcessorModel::ThreeD2A.floorplan().dies.len(), 2);
        assert_eq!(ProcessorModel::ThreeD2A.floorplan().total_banks(), 15);
    }

    #[test]
    fn names() {
        assert_eq!(ProcessorModel::ThreeD2A.to_string(), "3d-2a");
    }

    #[test]
    fn parse_round_trip() {
        for m in ProcessorModel::ALL {
            assert_eq!(m.name().parse::<ProcessorModel>().unwrap(), m);
        }
        let err = "4d".parse::<ProcessorModel>().unwrap_err();
        assert!(err.to_string().contains("4d"));
    }
}
