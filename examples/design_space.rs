//! Design-space sweep: regenerates the paper's headline comparisons —
//! the Fig. 4 thermal sweep, the Fig. 6 performance comparison, and the
//! §3.3 iso-thermal operating points — at a configurable scale.
//!
//! ```sh
//! cargo run --release --example design_space [--paper]
//! ```
//!
//! `--paper` runs all 19 benchmarks at full scale (several minutes);
//! the default uses a representative subset.

use rmt3d::experiments::{fig4, fig6, iso_thermal};
use rmt3d::RunScale;
use rmt3d_workload::Benchmark;

fn main() {
    let full = std::env::args().any(|a| a == "--paper");
    let (benchmarks, scale): (Vec<Benchmark>, RunScale) = if full {
        (Benchmark::ALL.to_vec(), RunScale::paper())
    } else {
        (
            vec![
                Benchmark::Gzip,
                Benchmark::Mcf,
                Benchmark::Swim,
                Benchmark::Eon,
                Benchmark::Art,
            ],
            RunScale {
                warmup_instructions: 50_000,
                instructions: 300_000,
                thermal_grid: 50,
            },
        )
    };

    println!("== Fig. 6: performance across processor models ==");
    let f6 = fig6::run(&benchmarks, scale);
    print!("{}", f6.to_table());
    println!("\nIPC chart (2d-a | 3d-2a):");
    let labels: Vec<&str> = f6.rows.iter().map(|r| r.benchmark.name()).collect();
    let values: Vec<Vec<f64>> = f6
        .rows
        .iter()
        .map(|r| vec![r.two_d_a, r.three_d_2a])
        .collect();
    print!(
        "{}",
        rmt3d::report::grouped_chart(&labels, &["2d-a", "3d-2a"], &values, 40)
    );

    println!("\n== Fig. 4: thermal overhead vs. checker power ==");
    let f4 = fig4::run(&benchmarks, scale).expect("fig4");
    print!("{}", f4.to_table());
    println!("3d-2a temperature rise over 2d-a:");
    let rise: Vec<(String, f64)> = f4
        .points
        .iter()
        .map(|p| {
            (
                format!("{:.0}W", p.checker_power.0),
                (p.three_d_2a - f4.baseline_2d_a).0,
            )
        })
        .collect();
    let rise_refs: Vec<(&str, f64)> = rise.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    print!("{}", rmt3d::report::bar_chart(&rise_refs, 40));

    println!("\n== Sec 3.3: iso-thermal operating points ==");
    for w in [7.0, 15.0] {
        let p = iso_thermal::run(w, &benchmarks, scale).expect("iso-thermal");
        println!(
            "{:4.0} W checker: match 2d-a thermals ({:.1} C) at {:.2} GHz, perf loss {:.1}%",
            w,
            p.baseline_temp.0,
            p.matched_frequency.value(),
            100.0 * p.performance_loss
        );
    }
}
