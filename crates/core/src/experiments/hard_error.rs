//! §2 hard-error tolerance — degraded-mode operation.
//!
//! "Given the redundancy in the architecture, a hard error in the
//! leading core can also be tolerated, although at a performance
//! penalty" — the checker is a full-fledged core and can run the thread
//! alone. This experiment quantifies that penalty: the checker without
//! RVP, the BOQ or the LVQ must use its own branch predictor and caches
//! and its small in-order window, so latency tolerance collapses.

use crate::model::{ProcessorModel, RunScale};
use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Degraded-mode performance for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardErrorRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// IPC of the healthy out-of-order leading core.
    pub healthy_ipc: f64,
    /// IPC of the checker running the thread alone.
    pub degraded_ipc: f64,
}

impl HardErrorRow {
    /// Slowdown factor of degraded mode.
    pub fn slowdown(&self) -> f64 {
        self.healthy_ipc / self.degraded_ipc
    }
}

/// The degraded-mode study.
#[derive(Debug, Clone)]
pub struct HardErrorReport {
    /// Per-benchmark rows.
    pub rows: Vec<HardErrorRow>,
}

impl HardErrorReport {
    /// Geometric-mean slowdown.
    pub fn mean_slowdown(&self) -> f64 {
        let s: f64 = self.rows.iter().map(|r| r.slowdown().ln()).sum();
        (s / self.rows.len() as f64).exp()
    }

    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Sec 2 Hard-error degraded mode (checker runs the thread alone)\n\
             benchmark   healthy-IPC  degraded-IPC  slowdown\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:10} {:12.2} {:13.2} {:8.2}x\n",
                r.benchmark.name(),
                r.healthy_ipc,
                r.degraded_ipc,
                r.slowdown()
            ));
        }
        s.push_str(&format!("gmean slowdown: {:.2}x\n", self.mean_slowdown()));
        s
    }
}

fn measure(cfg: CoreConfig, b: Benchmark, scale: RunScale) -> f64 {
    let mut core = OooCore::new(
        cfg,
        TraceGenerator::new(b.profile()),
        CacheHierarchy::new(
            ProcessorModel::TwoDA.nuca_layout(),
            NucaPolicy::DistributedSets,
        ),
    );
    core.prefill_caches();
    core.run_instructions(scale.warmup_instructions);
    core.reset_stats();
    core.run_instructions(scale.instructions);
    core.activity().ipc()
}

/// Runs the degraded-mode comparison.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> HardErrorReport {
    let rows = benchmarks
        .iter()
        .map(|&b| HardErrorRow {
            benchmark: b,
            healthy_ipc: measure(CoreConfig::leading_ev7_like(), b, scale),
            degraded_ipc: measure(CoreConfig::checker_as_leader(), b, scale),
        })
        .collect();
    HardErrorReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_mode_works_but_is_slower() {
        let r = run(&[Benchmark::Gzip, Benchmark::Mcf], RunScale::quick());
        for row in &r.rows {
            assert!(row.degraded_ipc > 0.05, "{} still runs", row.benchmark);
            // Dependent-load-bound programs (mcf) barely notice the
            // smaller window; compute-bound programs pay heavily.
            assert!(
                row.slowdown() > 1.02,
                "{} hard-error mode must cost performance: {:.2}x",
                row.benchmark,
                row.slowdown()
            );
        }
        // Compute-bound code suffers more than memory-bound code (mcf is
        // already limited by DRAM, not the window).
        let gzip = r.rows[0].slowdown();
        let mcf = r.rows[1].slowdown();
        assert!(
            gzip > mcf,
            "gzip slowdown {gzip:.2} should exceed mcf {mcf:.2}"
        );
        assert!(r.mean_slowdown() > 1.1);
        assert!(r.to_table().contains("slowdown"));
    }
}
