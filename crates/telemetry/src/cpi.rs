//! CPI stacks: cycle-accounting taxonomy for the leader and checker.
//!
//! Every simulated cycle is attributed to exactly one
//! [`CpiComponent`], so the stack's components always sum to the cycle
//! count — the invariant the profiler's tables rest on. The simulators
//! classify cycles only when their [`Sink`](crate::Sink) is enabled;
//! under [`NullSink`](crate::NullSink) the stack stays zero and the
//! classification code compiles out with the rest of the telemetry.

use std::fmt::Write as _;

/// Where one cycle went. The taxonomy follows the stall-accounting
/// style of CPI-stack papers: a cycle is *base issue* when forward
/// progress happened (or was bounded only by dependences/latency), and
/// otherwise is charged to the oldest blocking cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiComponent {
    /// Instructions committed, or progress was dependence/latency bound.
    BaseIssue,
    /// Nothing to do: the front end delivered no work (empty window).
    FetchStarved,
    /// Fetch squashed behind an unresolved branch mispredict.
    BranchRedirect,
    /// Fetch blocked on an instruction-cache miss.
    IcacheMiss,
    /// Commit blocked on an outstanding data-cache (load) miss.
    DcacheMiss,
    /// Dispatch blocked: ROB, issue queue, LSQ, or pipe at capacity.
    StructFull,
    /// Leader commit stalled by checker back-pressure (RVQ/StB full).
    CheckerStall,
    /// Checker clock gated off by DFS (leader-cycle domain only).
    DfsThrottled,
    /// Cycles charged to recovery stalls after a detected error.
    Recovery,
}

impl CpiComponent {
    /// Every component, in stack-display order.
    pub const ALL: [CpiComponent; 9] = [
        CpiComponent::BaseIssue,
        CpiComponent::FetchStarved,
        CpiComponent::BranchRedirect,
        CpiComponent::IcacheMiss,
        CpiComponent::DcacheMiss,
        CpiComponent::StructFull,
        CpiComponent::CheckerStall,
        CpiComponent::DfsThrottled,
        CpiComponent::Recovery,
    ];

    /// Number of components (the stack's array length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name, used in tables, JSON, and the sweep
    /// cache codec.
    pub fn name(self) -> &'static str {
        match self {
            CpiComponent::BaseIssue => "base_issue",
            CpiComponent::FetchStarved => "fetch_starved",
            CpiComponent::BranchRedirect => "branch_redirect",
            CpiComponent::IcacheMiss => "icache_miss",
            CpiComponent::DcacheMiss => "dcache_miss",
            CpiComponent::StructFull => "struct_full",
            CpiComponent::CheckerStall => "checker_stall",
            CpiComponent::DfsThrottled => "dfs_throttled",
            CpiComponent::Recovery => "recovery",
        }
    }

    /// Position in [`CpiComponent::ALL`] (and in the stack's array).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Counter-series name used when the leader's stack is exported
    /// into a trace (`Event::Counter`); `trace-report` reads these back.
    pub fn leader_counter_name(self) -> &'static str {
        match self {
            CpiComponent::BaseIssue => "cpi_leader_base_issue",
            CpiComponent::FetchStarved => "cpi_leader_fetch_starved",
            CpiComponent::BranchRedirect => "cpi_leader_branch_redirect",
            CpiComponent::IcacheMiss => "cpi_leader_icache_miss",
            CpiComponent::DcacheMiss => "cpi_leader_dcache_miss",
            CpiComponent::StructFull => "cpi_leader_struct_full",
            CpiComponent::CheckerStall => "cpi_leader_checker_stall",
            CpiComponent::DfsThrottled => "cpi_leader_dfs_throttled",
            CpiComponent::Recovery => "cpi_leader_recovery",
        }
    }

    /// Counter-series name for the checker's composed stack.
    pub fn checker_counter_name(self) -> &'static str {
        match self {
            CpiComponent::BaseIssue => "cpi_checker_base_issue",
            CpiComponent::FetchStarved => "cpi_checker_fetch_starved",
            CpiComponent::BranchRedirect => "cpi_checker_branch_redirect",
            CpiComponent::IcacheMiss => "cpi_checker_icache_miss",
            CpiComponent::DcacheMiss => "cpi_checker_dcache_miss",
            CpiComponent::StructFull => "cpi_checker_struct_full",
            CpiComponent::CheckerStall => "cpi_checker_checker_stall",
            CpiComponent::DfsThrottled => "cpi_checker_dfs_throttled",
            CpiComponent::Recovery => "cpi_checker_recovery",
        }
    }
}

/// Per-component cycle counts. `Copy` and cheap: the cores hold one and
/// bump a single array slot per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpiStack {
    counts: [u64; CpiComponent::COUNT],
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Charges one cycle to `component`.
    #[inline]
    pub fn add(&mut self, component: CpiComponent) {
        self.counts[component.index()] += 1;
    }

    /// Charges `cycles` cycles to `component` (system-level composition:
    /// recovery stalls, DFS-gated cycles).
    pub fn add_cycles(&mut self, component: CpiComponent, cycles: u64) {
        self.counts[component.index()] += cycles;
    }

    /// Cycles charged to `component`.
    pub fn get(&self, component: CpiComponent) -> u64 {
        self.counts[component.index()]
    }

    /// Overwrites one component's count (decoding a cached result).
    pub fn set(&mut self, component: CpiComponent, cycles: u64) {
        self.counts[component.index()] = cycles;
    }

    /// Sum of every component — by construction, the number of cycles
    /// classified.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no cycle has been charged.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Component-wise `self - earlier` (measurement over a window whose
    /// start state was snapshotted).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component ran backwards.
    pub fn delta_since(&self, earlier: &CpiStack) -> CpiStack {
        let mut d = CpiStack::new();
        for (slot, (now, then)) in d
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            debug_assert!(now >= then, "CPI component ran backwards");
            *slot = now - then;
        }
        d
    }

    /// Component-wise sum (aggregating stacks across runs).
    pub fn merge(&mut self, other: &CpiStack) {
        for (slot, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += v;
        }
    }

    /// Fraction of total cycles charged to `component` (0 when empty).
    pub fn fraction(&self, component: CpiComponent) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(component) as f64 / total as f64
        }
    }

    /// Renders the stack as an aligned table. `committed` scales each
    /// component into CPI contribution (cycles per committed
    /// instruction); pass 0 to omit the CPI column's meaning and print
    /// 0.
    pub fn format_table(&self, label: &str, committed: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{label:18} {:>14} {:>8} {:>10}",
            "cycles", "share", "CPI"
        );
        for c in CpiComponent::ALL {
            let cycles = self.get(c);
            if cycles == 0 {
                continue;
            }
            let cpi = if committed == 0 {
                0.0
            } else {
                cycles as f64 / committed as f64
            };
            let _ = writeln!(
                out,
                "  {:16} {cycles:>14} {:>7.1}% {cpi:>10.4}",
                c.name(),
                100.0 * self.fraction(c),
            );
        }
        let total_cpi = if committed == 0 {
            0.0
        } else {
            self.total() as f64 / committed as f64
        };
        let _ = writeln!(
            out,
            "  {:16} {:>14} {:>7.1}% {total_cpi:>10.4}",
            "total",
            self.total(),
            if self.is_empty() { 0.0 } else { 100.0 },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_total() {
        let mut s = CpiStack::new();
        for (i, c) in CpiComponent::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                s.add(c);
            }
        }
        let by_hand: u64 = CpiComponent::ALL.into_iter().map(|c| s.get(c)).sum();
        assert_eq!(s.total(), by_hand);
        assert_eq!(s.total(), (1..=CpiComponent::COUNT as u64).sum::<u64>());
    }

    #[test]
    fn names_and_counter_names_are_distinct() {
        let mut names: Vec<&str> = CpiComponent::ALL.iter().map(|c| c.name()).collect();
        names.extend(CpiComponent::ALL.iter().map(|c| c.leader_counter_name()));
        names.extend(CpiComponent::ALL.iter().map(|c| c.checker_counter_name()));
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count);
    }

    #[test]
    fn delta_and_merge_are_inverses() {
        let mut early = CpiStack::new();
        early.add(CpiComponent::BaseIssue);
        early.add_cycles(CpiComponent::DcacheMiss, 5);
        let mut late = early;
        late.add_cycles(CpiComponent::Recovery, 200);
        late.add(CpiComponent::BaseIssue);
        let delta = late.delta_since(&early);
        assert_eq!(delta.get(CpiComponent::Recovery), 200);
        assert_eq!(delta.get(CpiComponent::BaseIssue), 1);
        assert_eq!(delta.get(CpiComponent::DcacheMiss), 0);
        let mut rebuilt = early;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, late);
    }

    #[test]
    fn fractions_partition_unity() {
        let mut s = CpiStack::new();
        s.add_cycles(CpiComponent::BaseIssue, 60);
        s.add_cycles(CpiComponent::FetchStarved, 25);
        s.add_cycles(CpiComponent::CheckerStall, 15);
        let sum: f64 = CpiComponent::ALL.iter().map(|&c| s.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(s.fraction(CpiComponent::BaseIssue), 0.6);
    }

    #[test]
    fn table_lists_nonzero_components_and_total() {
        let mut s = CpiStack::new();
        s.add_cycles(CpiComponent::BaseIssue, 900);
        s.add_cycles(CpiComponent::DcacheMiss, 100);
        let t = s.format_table("leader", 500);
        assert!(t.contains("base_issue"));
        assert!(t.contains("dcache_miss"));
        assert!(!t.contains("recovery"), "zero rows are elided:\n{t}");
        assert!(t.contains("total"));
        assert!(t.contains("2.0000"), "total CPI 1000/500:\n{t}");
    }

    #[test]
    fn empty_stack_formats_without_dividing_by_zero() {
        let t = CpiStack::new().format_table("leader", 0);
        assert!(t.contains("total"));
    }
}
