//! Figure 5 — per-benchmark peak temperatures for the five thermal
//! configurations: 2d-a, 2d-2a @7 W, 3d-2a @7 W, 2d-2a @15 W,
//! 3d-2a @15 W.

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, override_checker_power, PowerMapConfig};
use crate::simulate::{PerfResult, SerialSimulator, SimConfig, Simulator};
use rmt3d_power::CheckerPowerModel;
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, Watts};
use rmt3d_workload::Benchmark;

/// One benchmark's row in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// 2d-a baseline.
    pub two_d_a: Celsius,
    /// 2d-2a with a 7 W checker.
    pub two_d_2a_7w: Celsius,
    /// 3d-2a with a 7 W checker.
    pub three_d_2a_7w: Celsius,
    /// 2d-2a with a 15 W checker.
    pub two_d_2a_15w: Celsius,
    /// 3d-2a with a 15 W checker.
    pub three_d_2a_15w: Celsius,
}

/// The full Fig. 5 dataset.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One row per benchmark.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// Suite-mean 2d-a peak temperature (the Fig. 4 baseline line).
    pub fn mean_baseline(&self) -> Celsius {
        Celsius(self.rows.iter().map(|r| r.two_d_a.0).sum::<f64>() / self.rows.len() as f64)
    }

    /// Suite-mean of one column, selected by an accessor.
    pub fn mean_of(&self, f: impl Fn(&Fig5Row) -> Celsius) -> Celsius {
        Celsius(self.rows.iter().map(|r| f(r).0).sum::<f64>() / self.rows.len() as f64)
    }

    /// Formats the dataset as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Fig.5 Per-benchmark peak temperature (C)\n\
             benchmark   2d_a  2d_2a_7W  3d_2a_7W  2d_2a_15W  3d_2a_15W\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:10} {:6.1} {:9.1} {:9.1} {:10.1} {:10.1}\n",
                r.benchmark.name(),
                r.two_d_a.0,
                r.two_d_2a_7w.0,
                r.three_d_2a_7w.0,
                r.two_d_2a_15w.0,
                r.three_d_2a_15w.0
            ));
        }
        s
    }
}

/// Runs Fig. 5 for the given benchmarks (use [`Benchmark::ALL`] for the
/// paper's full set).
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> Result<Fig5Result, ThermalError> {
    run_with(&SerialSimulator, benchmarks, scale)
}

/// [`run`] with an explicit [`Simulator`]. Each of the three distinct
/// models simulates once per benchmark (checker wattage only affects
/// the thermal solve, so the 7 W and 15 W columns share one
/// performance run) and the whole grid is submitted as one batch.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run_with(
    sim: &dyn Simulator,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<Fig5Result, ThermalError> {
    let tcfg = ThermalConfig {
        grid: scale.thermal_grid,
        ..ThermalConfig::paper()
    };
    let models = [
        ProcessorModel::TwoDA,
        ProcessorModel::TwoD2A,
        ProcessorModel::ThreeD2A,
    ];
    let jobs: Vec<(SimConfig, Benchmark)> = models
        .iter()
        .flat_map(|&m| {
            benchmarks
                .iter()
                .map(move |&b| (SimConfig::nominal(m, scale), b))
        })
        .collect();
    let perfs = sim.simulate_batch(&jobs);
    let solve_at = |perf: &PerfResult, watts: f64| {
        let mut chip = build_power_map(
            perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(watts.max(1.0)))),
        );
        if perf.model.has_checker() {
            override_checker_power(&mut chip, Watts(watts));
        }
        solve(&perf.model.floorplan(), &chip.map, &tcfg).map(|r| r.peak())
    };
    let mut rows = Vec::with_capacity(benchmarks.len());
    for (i, &b) in benchmarks.iter().enumerate() {
        let base = &perfs[i];
        let p2 = &perfs[benchmarks.len() + i];
        let p3 = &perfs[2 * benchmarks.len() + i];
        rows.push(Fig5Row {
            benchmark: b,
            two_d_a: solve_at(base, 0.0)?,
            two_d_2a_7w: solve_at(p2, 7.0)?,
            three_d_2a_7w: solve_at(p3, 7.0)?,
            two_d_2a_15w: solve_at(p2, 15.0)?,
            three_d_2a_15w: solve_at(p3, 15.0)?,
        });
    }
    Ok(Fig5Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_benchmark_ordering_holds() {
        let r = run(&[Benchmark::Gzip, Benchmark::Mcf], RunScale::quick()).expect("fig5 solves");
        for row in &r.rows {
            // 3D runs hotter than the 2D chip with the same contents
            // (a small tolerance at 7 W, where cool benchmarks tie).
            assert!(
                row.three_d_2a_7w.0 > row.two_d_2a_7w.0 - 1.0,
                "{}: 3d7 {} vs 2d7 {}",
                row.benchmark,
                row.three_d_2a_7w,
                row.two_d_2a_7w
            );
            assert!(row.three_d_2a_15w > row.two_d_2a_15w, "{}", row.benchmark);
            // 15 W checker no cooler than 7 W.
            assert!(row.three_d_2a_15w >= row.three_d_2a_7w);
            // Everything is above ambient.
            assert!(row.two_d_a.0 > 47.0);
        }
        // Busy gzip runs hotter than memory-bound mcf (Fig. 5's spread).
        let gzip = &r.rows[0];
        let mcf = &r.rows[1];
        assert!(gzip.two_d_a > mcf.two_d_a);
        // Means and table formatting.
        assert!(r.mean_baseline().0 > 47.0);
        assert!(r.to_table().contains("gzip"));
    }
}
