//! The generic work-stealing pool underneath [`run_sweep`] and the
//! fault-injection campaign engine (`rmt3d-campaign`).
//!
//! [`run_pool`] owns the concurrency skeleton — a shared atomic cursor,
//! scoped worker threads, per-item panic isolation, and a coordinator
//! loop that funnels lifecycle events back to the (possibly non-`Send`)
//! caller — while the *work* is supplied as three closures: a cache
//! `probe`, the `exec` body, and a best-effort `save`. Records come
//! back in item order regardless of worker count, which is what makes
//! parallel runs byte-identical to serial ones.
//!
//! The coordinator doubles as the run's monitor: it tallies per-worker
//! utilization and steal counts for the [`PoolEvent::Drained`] summary,
//! and (when a [`WatchdogConfig`] is supplied) drives a heartbeat
//! [`Watchdog`] off `recv_timeout`, surfacing silent items as
//! [`PoolEvent::Stalled`] diagnostics without interrupting them.
//!
//! [`run_sweep`]: crate::run_sweep

use rmt3d_obs::{Watchdog, WatchdogConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// One item's outcome, in item order in [`run_pool`]'s return value.
#[derive(Debug, Clone)]
pub struct PoolRecord<R> {
    /// The produced result, or the panic message of a failed item.
    pub outcome: Result<R, String>,
    /// True when `probe` satisfied the item without running `exec`.
    pub cached: bool,
    /// Wall-clock nanoseconds spent in `exec` (0 for cache hits).
    pub wall_nanos: u64,
}

/// Aggregate statistics of one pool drain, reported once via
/// [`PoolEvent::Drained`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStatsSummary {
    /// Worker threads the pool ran.
    pub workers: u64,
    /// Items that executed (probe misses).
    pub executed: u64,
    /// Items satisfied by `probe`.
    pub cache_hits: u64,
    /// Executed items that panicked.
    pub failed: u64,
    /// Items claimed off another worker's static round-robin slot
    /// (`index % workers != worker`): a proxy for how much the shared
    /// cursor rebalanced uneven item costs.
    pub steals: u64,
    /// Total wall-clock nanoseconds workers spent inside `exec`.
    pub busy_nanos: u64,
    /// Total wall-clock nanoseconds workers sat idle (pool wall time ×
    /// workers, minus busy).
    pub idle_nanos: u64,
    /// Wall-clock nanoseconds from pool start to drain.
    pub wall_nanos: u64,
}

/// Lifecycle notification delivered to the coordinator-side observer.
///
/// Events arrive in completion order (not item order); `index` is the
/// item's position in the input slice.
#[derive(Debug, Clone, Copy)]
pub enum PoolEvent {
    /// A worker began executing item `index` (not sent for cache hits).
    Started {
        /// Item position.
        index: usize,
    },
    /// `probe` satisfied item `index` without executing it.
    CacheHit {
        /// Item position.
        index: usize,
    },
    /// Item `index` finished executing.
    Finished {
        /// Item position.
        index: usize,
        /// False when the item panicked.
        ok: bool,
        /// Wall-clock nanoseconds the item's `exec` took.
        wall_nanos: u64,
        /// Estimated nanoseconds until the pool drains, extrapolated
        /// from the mean executed-item wall time (see [`eta_nanos`]).
        eta_nanos: u64,
    },
    /// The watchdog flagged item `index`: no heartbeat for longer than
    /// the configured multiple of the median executed-item duration.
    /// Advisory — the item keeps running and is flagged at most once.
    Stalled {
        /// Item position.
        index: usize,
        /// Nanoseconds of silence when flagged.
        elapsed_nanos: u64,
        /// Median executed-item duration the threshold derived from.
        median_nanos: u64,
    },
    /// Every item is accounted for; the pool is about to return.
    /// Always the final event of a drain.
    Drained {
        /// Utilization and outcome totals.
        stats: PoolStatsSummary,
    },
}

enum Msg<R> {
    Started {
        index: usize,
        worker: usize,
    },
    Done {
        index: usize,
        outcome: Box<Result<R, String>>,
        cached: bool,
        wall_nanos: u64,
    },
}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("panic with non-string payload")
    }
}

/// Remaining-work estimate from the mean executed-item wall time:
/// `mean × remaining ÷ workers`. Zero until the first item executes
/// (no baseline), zero once nothing remains. With roughly uniform item
/// costs the estimate converges monotonically to zero as items finish.
pub fn eta_nanos(exec_wall_sum: u64, executed: u64, remaining: u64, workers: u64) -> u64 {
    if executed == 0 {
        return 0;
    }
    (exec_wall_sum / executed).saturating_mul(remaining) / workers.max(1)
}

/// Runs `exec` over every item on `workers` threads and returns the
/// records in item order.
///
/// Per item: `probe` runs first (worker-side) and a `Some` result
/// becomes a cache-hit record; otherwise `exec` runs under
/// `catch_unwind` (a panicking item is isolated and reported as a
/// failed record) and a successful result is offered to `save`
/// (worker-side, best-effort — e.g. persisting to a result store).
/// `complete` and `observe` run on the calling thread only, so they
/// may own non-`Send` state such as a telemetry sink. `complete` fires
/// exactly once per item, in completion order, with the item's index,
/// outcome, and cached flag — *before* the item is acknowledged in the
/// records or surfaced to `observe`, which is what lets a caller
/// journal each completion durably (write-ahead) ahead of any
/// downstream effect. When `watchdog` is supplied, the coordinator
/// polls at its interval and reports silent items as
/// [`PoolEvent::Stalled`]. The final event is always
/// [`PoolEvent::Drained`] with the pool's utilization summary.
// One parameter per pipeline stage (probe/exec/save/complete/observe);
// grouping them into a struct would only rename the arity.
#[allow(clippy::too_many_arguments)]
pub fn run_pool<I, R, P, E, V, C, O>(
    items: &[I],
    workers: usize,
    probe: P,
    exec: E,
    save: V,
    watchdog: Option<WatchdogConfig>,
    mut complete: C,
    mut observe: O,
) -> Vec<PoolRecord<R>>
where
    I: Sync,
    R: Send,
    P: Fn(&I) -> Option<R> + Sync,
    E: Fn(&I) -> R + Sync,
    V: Fn(&I, &R) + Sync,
    C: FnMut(usize, &Result<R, String>, bool),
    O: FnMut(PoolEvent),
{
    let total = items.len();
    let workers = workers.max(1).min(total.max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Msg<R>>();

    let mut records: Vec<Option<PoolRecord<R>>> = Vec::with_capacity(total);
    records.resize_with(total, || None);
    let t0 = Instant::now();
    let mut stats = PoolStatsSummary {
        workers: workers as u64,
        ..PoolStatsSummary::default()
    };

    thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let probe = &probe;
            let exec = &exec;
            let save = &save;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if let Some(result) = probe(item) {
                    let _ = tx.send(Msg::Done {
                        index: i,
                        outcome: Box::new(Ok(result)),
                        cached: true,
                        wall_nanos: 0,
                    });
                    continue;
                }
                let _ = tx.send(Msg::Started { index: i, worker });
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| exec(item))).map_err(panic_message);
                let wall_nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if let Ok(result) = &outcome {
                    save(item, result);
                }
                let _ = tx.send(Msg::Done {
                    index: i,
                    outcome: Box::new(outcome),
                    cached: false,
                    wall_nanos,
                });
            });
        }
        drop(tx);

        // Coordinator: tallies, ETA, watchdog, and the caller's
        // observer.
        let mut wd = watchdog.map(Watchdog::new);
        let poll = watchdog
            .map(|cfg| Duration::from_nanos(cfg.poll_nanos.max(1)))
            .unwrap_or_default();
        let now_nanos = || t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut done = 0usize;
        let mut exec_wall_sum = 0u64;
        while done < total {
            let msg = if wd.is_some() {
                match rx.recv_timeout(poll) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => break,
                }
            };
            match msg {
                None => {}
                Some(Msg::Started { index, worker }) => {
                    if index % workers != worker {
                        stats.steals += 1;
                    }
                    if let Some(wd) = &mut wd {
                        wd.start(index, now_nanos());
                    }
                    observe(PoolEvent::Started { index });
                }
                Some(Msg::Done {
                    index,
                    outcome,
                    cached,
                    wall_nanos,
                }) => {
                    done += 1;
                    complete(index, &outcome, cached);
                    if cached {
                        stats.cache_hits += 1;
                        observe(PoolEvent::CacheHit { index });
                    } else {
                        stats.executed += 1;
                        if outcome.is_err() {
                            stats.failed += 1;
                        }
                        exec_wall_sum += wall_nanos;
                        stats.busy_nanos += wall_nanos;
                        if let Some(wd) = &mut wd {
                            wd.finish(index, wall_nanos);
                        }
                        observe(PoolEvent::Finished {
                            index,
                            ok: outcome.is_ok(),
                            wall_nanos,
                            eta_nanos: eta_nanos(
                                exec_wall_sum,
                                stats.executed,
                                (total - done) as u64,
                                workers as u64,
                            ),
                        });
                    }
                    records[index] = Some(PoolRecord {
                        outcome: *outcome,
                        cached,
                        wall_nanos,
                    });
                }
            }
            if let Some(wd) = &mut wd {
                for stall in wd.scan(now_nanos()) {
                    observe(PoolEvent::Stalled {
                        index: stall.index,
                        elapsed_nanos: stall.elapsed_nanos,
                        median_nanos: stall.median_nanos,
                    });
                }
            }
        }
        stats.wall_nanos = now_nanos();
        stats.idle_nanos = (stats.wall_nanos)
            .saturating_mul(workers as u64)
            .saturating_sub(stats.busy_nanos);
        observe(PoolEvent::Drained { stats });
    });

    records
        .into_iter()
        .map(|r| r.expect("every item reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn records_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let records = run_pool(
            &items,
            8,
            |_| None,
            |&i| i * i,
            |_, _| {},
            None,
            |_, _, _| {},
            |_| {},
        );
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.outcome, Ok((i * i) as u64));
            assert!(!r.cached);
        }
    }

    #[test]
    fn panics_are_isolated_per_item() {
        let items: Vec<u64> = (0..10).collect();
        let records = run_pool(
            &items,
            4,
            |_| None,
            |&i| {
                assert!(i != 3, "item three explodes");
                i
            },
            |_, _| {},
            None,
            |_, _, _| {},
            |_| {},
        );
        assert!(records[3]
            .outcome
            .as_ref()
            .is_err_and(|e| e.contains("item three explodes")));
        assert_eq!(records.iter().filter(|r| r.outcome.is_ok()).count(), 9);
    }

    #[test]
    fn probe_hits_skip_exec_and_save() {
        let items: Vec<u64> = (0..20).collect();
        let executed = AtomicU64::new(0);
        let saved = AtomicU64::new(0);
        let records = run_pool(
            &items,
            3,
            |&i| (i % 2 == 0).then_some(i + 100),
            |&i| {
                executed.fetch_add(1, Ordering::Relaxed);
                i + 100
            },
            |_, _| {
                saved.fetch_add(1, Ordering::Relaxed);
            },
            None,
            |_, _, _| {},
            |_| {},
        );
        assert_eq!(executed.load(Ordering::Relaxed), 10);
        assert_eq!(saved.load(Ordering::Relaxed), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.outcome, Ok(i as u64 + 100));
            assert_eq!(r.cached, i % 2 == 0);
        }
    }

    #[test]
    fn observer_sees_every_lifecycle_event_and_a_final_drain() {
        let items: Vec<u64> = (0..16).collect();
        let mut started = 0usize;
        let mut finished = 0usize;
        let mut hits = 0usize;
        let mut drained = Vec::new();
        run_pool(
            &items,
            4,
            |&i| (i < 4).then_some(i),
            |&i| i,
            |_, _| {},
            None,
            |_, _, _| {},
            |ev| match ev {
                PoolEvent::Started { .. } => started += 1,
                PoolEvent::CacheHit { .. } => hits += 1,
                PoolEvent::Finished { .. } => finished += 1,
                PoolEvent::Stalled { .. } => panic!("no watchdog configured"),
                PoolEvent::Drained { stats } => drained.push(stats),
            },
        );
        assert_eq!(started, 12);
        assert_eq!(finished, 12);
        assert_eq!(hits, 4);
        let [stats] = drained.as_slice() else {
            panic!("exactly one drain event, got {drained:?}");
        };
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.executed, 12);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.failed, 0);
        assert!(stats.wall_nanos > 0);
        assert_eq!(
            stats.idle_nanos,
            stats.wall_nanos * 4 - stats.busy_nanos,
            "idle is the utilization complement"
        );
    }

    #[test]
    fn complete_hook_sees_every_item_once_before_its_observe_event() {
        // The journaling contract: exactly one `complete` per item, in
        // completion order, carrying the real outcome and cached flag,
        // and always ahead of the item's CacheHit/Finished event.
        let items: Vec<u64> = (0..24).collect();
        let mut completions: Vec<(usize, Result<u64, String>, bool)> = Vec::new();
        let observed = std::cell::Cell::new(0usize);
        run_pool(
            &items,
            4,
            |&i| (i % 3 == 0).then_some(i),
            |&i| {
                assert!(i != 7, "item seven explodes");
                i
            },
            |_, _| {},
            None,
            |index, outcome: &Result<u64, String>, cached| {
                assert_eq!(
                    completions.len(),
                    observed.get(),
                    "complete must precede the item's observe event"
                );
                completions.push((index, outcome.clone(), cached));
            },
            |ev| {
                if matches!(ev, PoolEvent::CacheHit { .. } | PoolEvent::Finished { .. }) {
                    observed.set(observed.get() + 1);
                }
            },
        );
        assert_eq!(completions.len(), 24);
        assert_eq!(observed.get(), 24);
        let mut seen: Vec<usize> = completions.iter().map(|(i, _, _)| *i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>(), "each item exactly once");
        for (index, outcome, cached) in &completions {
            assert_eq!(*cached, index % 3 == 0, "cached flag at {index}");
            match index {
                7 => assert!(outcome.as_ref().is_err_and(|e| e.contains("explodes"))),
                i => assert_eq!(outcome, &Ok(*i as u64)),
            }
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let items: Vec<u64> = Vec::new();
        let records = run_pool(
            &items,
            4,
            |_| None,
            |&i| i,
            |_, _| {},
            None,
            |_, _, _| {},
            |_| {},
        );
        assert!(records.is_empty());
    }

    #[test]
    fn eta_converges_monotonically_for_uniform_items() {
        // Constant 1ms items on 2 workers: after n of 10 finish the
        // estimate is mean × remaining ÷ workers, strictly decreasing
        // to exactly zero at the end.
        const WALL: u64 = 1_000_000;
        let mut sum = 0u64;
        let mut last = u64::MAX;
        for n in 1..=10u64 {
            sum += WALL;
            let eta = eta_nanos(sum, n, 10 - n, 2);
            assert!(eta < last, "ETA must shrink: {eta} !< {last} at n={n}");
            assert_eq!(eta, WALL * (10 - n) / 2);
            last = eta;
        }
        assert_eq!(last, 0, "drained pool has zero ETA");
        assert_eq!(eta_nanos(0, 0, 10, 2), 0, "no baseline, no estimate");
        assert_eq!(eta_nanos(u64::MAX, 1, u64::MAX, 0), u64::MAX, "saturates");
    }

    #[test]
    fn watchdog_flags_a_deliberately_stalled_item() {
        use std::time::Duration;
        // Items 1..=5 finish in ~1ms; item 0 sleeps 400ms. With a 4×
        // median threshold and a 5ms poll, the coordinator must flag
        // item 0 while it is still running — exactly once — and the
        // item must still complete successfully.
        let items: Vec<u64> = (0..6).collect();
        let cfg = WatchdogConfig {
            multiplier: 4.0,
            min_samples: 3,
            floor_nanos: 20_000_000, // 20ms: above fast-item noise
            poll_nanos: 5_000_000,   // 5ms
        };
        let mut stalls = Vec::new();
        let records = run_pool(
            &items,
            2,
            |_| None,
            |&i| {
                std::thread::sleep(if i == 0 {
                    Duration::from_millis(400)
                } else {
                    Duration::from_millis(1)
                });
                i
            },
            |_, _| {},
            Some(cfg),
            |_, _, _| {},
            |ev| {
                if let PoolEvent::Stalled {
                    index,
                    elapsed_nanos,
                    median_nanos,
                } = ev
                {
                    stalls.push((index, elapsed_nanos, median_nanos));
                }
            },
        );
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(stalls.len(), 1, "stalls: {stalls:?}");
        let (index, elapsed, median) = stalls[0];
        assert_eq!(index, 0);
        assert!(elapsed >= 20_000_000, "flagged after the floor: {elapsed}");
        assert!(median > 0, "median baseline came from finished items");
    }
}
