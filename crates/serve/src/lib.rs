//! Sweep-as-a-service: the `rmt3d serve` job daemon.
//!
//! Turns the one-shot `rmt3d sweep` / `rmt3d campaign` commands into a
//! long-running service. Clients speak newline-delimited JSON over TCP
//! ([`proto`]); accepted jobs land in a persistent, journaled priority
//! queue ([`queue`]) that survives daemon restarts; the scheduler
//! ([`serve`]) executes them on the existing work-stealing pool against
//! a shared content-addressed result store, so identical specs from
//! different tenants are served from cache, byte-identical. Progress
//! streams to subscribed clients by forwarding the engines' existing
//! telemetry events; each executed job is registered in the run ledger
//! so `rmt3d status` / `rmt3d report` work unchanged.
//!
//! The crate is std-only like the rest of the workspace: hand-rolled
//! JSON, `std::net` sockets, no async runtime.

mod daemon;
mod payload;
mod queue;

pub mod client;
pub mod metrics;
pub mod proto;

pub use daemon::{serve, ServeOptions};
pub use metrics::{
    parse_sample_line, DaemonMetrics, MetricsRing, TraceLog, METRICS_RING_CAP, METRICS_RING_FILE,
    TRACE_LOG_FILE,
};
pub use payload::JobPayload;
pub use queue::{Cancelled, JobEntry, JobOutcome, JobQueue, JobState, JOURNAL_FILE};
