//! Lean perf-regression gate targets: two small, deterministic
//! simulations timed with the shared harness, plus exact deterministic
//! stats (`record_stat`) for each.
//!
//! CI runs this with `RMT3D_BENCH_JSON=BENCH_<sha>.json` and feeds the
//! output to `rmt3d bench-gate --baseline BENCH_BASELINE.json`: wall
//! times may drift up to the tolerance, deterministic stats must match
//! the baseline exactly. Keep the workload small — the gate must be
//! cheap enough to run on every push.

use rmt3d::{simulate, ProcessorModel, RunScale, SimConfig};
use rmt3d_bench::{bench, record_stat};
use rmt3d_workload::Benchmark;
use std::hint::black_box;

fn gate_scale() -> RunScale {
    RunScale {
        warmup_instructions: 5_000,
        instructions: 40_000,
        thermal_grid: 25,
    }
}

fn main() {
    for model in [ProcessorModel::TwoDA, ProcessorModel::ThreeD2A] {
        let cfg = SimConfig::nominal(model, gate_scale());
        let bench_name = format!("gate/{model}/gzip");
        bench(&bench_name, 5, || {
            black_box(simulate(&cfg, Benchmark::Gzip))
        });
        let r = simulate(&cfg, Benchmark::Gzip);
        record_stat(&format!("{bench_name}/total_cycles"), r.total_cycles as f64);
        record_stat(
            &format!("{bench_name}/committed"),
            r.leader.committed as f64,
        );
    }
}
