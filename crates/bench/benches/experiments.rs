//! Regenerates the paper's in-text experiments — §3.3 iso-thermal
//! operation, §3.4 interconnect evaluation, §4 heterogeneous die, and
//! the Fig. 1 RMT summary — and benchmarks their kernels.
//!
//! Run with `cargo bench -p rmt3d-bench --bench experiments`. Set
//! `RMT3D_PAPER=1` for the full suite.

use rmt3d::experiments::{
    dfs_ablation, fig7, hard_error, heterogeneous, interconnect, interrupts, iso_thermal,
    leakage_feedback, margins, resilience, rmt_summary, shared_cache, tmr_study,
};
use rmt3d::RunScale;
use rmt3d_bench::bench;
use rmt3d_interconnect::{wire_report, BandwidthConfig};
use rmt3d_units::TechNode;
use rmt3d_workload::Benchmark;
use std::hint::black_box;

fn suite() -> (Vec<Benchmark>, RunScale) {
    if std::env::var("RMT3D_PAPER").is_ok() {
        (Benchmark::ALL.to_vec(), RunScale::paper())
    } else {
        (
            vec![Benchmark::Gzip, Benchmark::Swim, Benchmark::Vpr],
            RunScale {
                warmup_instructions: 40_000,
                instructions: 200_000,
                thermal_grid: 50,
            },
        )
    }
}

fn print_experiments() {
    let (benchmarks, scale) = suite();

    println!("\n== Sec 3.4: interconnect ==");
    print!("{}", interconnect::run().to_table());

    println!("\n== Sec 3.3: iso-thermal ==");
    for w in [7.0, 15.0] {
        let p = iso_thermal::run(w, &benchmarks, scale).expect("iso-thermal");
        println!(
            "{:4.0} W checker: {:.2} GHz to match 2d-a ({:.1} C), perf loss {:.1}%",
            w,
            p.matched_frequency.value(),
            p.baseline_temp.0,
            100.0 * p.performance_loss
        );
    }

    println!("\n== Sec 4: heterogeneous die ==");
    print!(
        "{}",
        heterogeneous::run(&benchmarks, scale)
            .expect("heterogeneous")
            .to_table()
    );

    println!("\n== Fig. 1 summary ==");
    print!("{}", rmt_summary::run(&benchmarks, scale).to_table());

    println!("\n== Sec 3.5: timing margins ==");
    let f7 = fig7::run(&benchmarks, scale);
    print!("{}", margins::run(&f7, TechNode::N65, 12).to_table());

    println!("\n== Sec 4 Discussion: DFS ablation ==");
    print!("{}", dfs_ablation::run(&benchmarks, scale).to_table());

    println!("\n== Sec 2: hard-error degraded mode ==");
    print!("{}", hard_error::run(&benchmarks, scale).to_table());

    println!("\n== Sec 2: interrupt synchronization ==");
    print!("{}", interrupts::run(&benchmarks, 10_000, scale).to_table());

    println!("\n== TMR extension ==");
    print!(
        "{}",
        tmr_study::run(Benchmark::Twolf, 6, 2e-3, 30_000).to_table()
    );

    println!("\n== Error-resilience synthesis ==");
    print!("{}", resilience::run(&benchmarks, scale).to_table());

    println!("\n== Sec 3.2: shared-cache motivation ==");
    print!("{}", shared_cache::run(80_000).to_table());

    println!("\n== Sec 3.2: leakage-temperature coupling ==");
    let lf = leakage_feedback::run(Benchmark::Gzip, scale).expect("coupled solve");
    println!(
        "open-loop {:.2} C -> closed-loop {:.2} C (shift {:+.3} C): negligible, as reported",
        lf.open_loop_peak.0,
        lf.closed_loop_peak.0,
        lf.peak_shift()
    );
    println!();
}

fn main() {
    print_experiments();

    {
        let plan = rmt3d::floorplan::ChipFloorplan::three_d_2a();
        let cfg = BandwidthConfig::paper();
        bench("sec34_wire_extraction", 10, || {
            black_box(wire_report(&plan, &cfg).intercore_length)
        });
    }

    bench("rmt_fault_injection_50k", 10, || {
        use rmt3d::rmt::{EccConfig, RmtConfig, RmtSystem};
        use rmt3d_cache::{CacheHierarchy, NucaPolicy};
        use rmt3d_cpu::{CoreConfig, OooCore};
        use rmt3d_workload::TraceGenerator;
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Gzip.profile()),
            CacheHierarchy::new(
                rmt3d::ProcessorModel::ThreeD2A.nuca_layout(),
                NucaPolicy::DistributedSets,
            ),
        );
        let mut sys = RmtSystem::new(leader, RmtConfig::paper()).with_fault_injection(
            1,
            1e-4,
            EccConfig::paper(),
        );
        sys.prefill_caches();
        sys.run_instructions(50_000);
        black_box(sys.stats().recoveries)
    });
}
