//! Diagnostic: thermal calibration probe — peak temperatures for the
//! three chip models across checker powers (used to tune the sink
//! constants; see DESIGN.md §7).
use rmt3d::power::CheckerPowerModel;
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{build_power_map, simulate, PowerMapConfig, ProcessorModel, RunScale, SimConfig};
use rmt3d_units::Watts;
use rmt3d_workload::Benchmark;

fn main() {
    let scale = RunScale {
        warmup_instructions: 30_000,
        instructions: 200_000,
        thermal_grid: 50,
    };
    let tcfg = ThermalConfig::paper();
    // 2d-a baseline on gzip (mid-activity benchmark)
    for b in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Eon] {
        let perf = simulate(&SimConfig::nominal(ProcessorModel::TwoDA, scale), b);
        let p = build_power_map(
            &perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let r = solve(&ProcessorModel::TwoDA.floorplan(), &p.map, &tcfg).unwrap();
        println!(
            "2d-a {}: leader={:.1}W total={:.1}W peak={} iters={}",
            b,
            p.leader.0,
            p.total().0,
            r.peak(),
            r.iterations()
        );
    }
    // 3d-2a with checker power sweep
    let perf3 = simulate(
        &SimConfig::nominal(ProcessorModel::ThreeD2A, scale),
        Benchmark::Gzip,
    );
    for cw in [2.0, 7.0, 15.0, 25.0] {
        let mut cfg = PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(cw)));
        cfg.throttle_checker_by_dfs = false;
        let p = build_power_map(&perf3, &cfg);
        let r = solve(&ProcessorModel::ThreeD2A.floorplan(), &p.map, &tcfg).unwrap();
        println!(
            "3d-2a chk={cw}W: total={:.1}W peak={}",
            p.total().0,
            r.peak()
        );
    }
    // 2d-2a comparison
    let perf2 = simulate(
        &SimConfig::nominal(ProcessorModel::TwoD2A, scale),
        Benchmark::Gzip,
    );
    for cw in [7.0, 15.0] {
        let p = build_power_map(
            &perf2,
            &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(cw))),
        );
        let r = solve(&ProcessorModel::TwoD2A.floorplan(), &p.map, &tcfg).unwrap();
        println!(
            "2d-2a chk={cw}W: total={:.1}W peak={}",
            p.total().0,
            r.peak()
        );
    }
}
