//! Committed-instruction records: the payload the leading core sends to
//! the checker through the RVQ/LVQ/BOQ (Fig. 1).

use rmt3d_workload::MicroOp;

/// Everything the leading core communicates about one committed
/// instruction.
///
/// Per §2.1, the leader forwards the *result*, both *input operands*
/// (enabling register value prediction in the trailer), *load values*
/// (so the trailer never touches the D-cache) and *branch outcomes*. The
/// paper's Table 4 sizes the die-to-die via bundles from exactly these
/// fields.
///
/// The record is 96 bytes and is copied on every hop of the leader →
/// queue → checker path, so the layout avoids `Option` payload tags:
/// the load value lives in [`CommittedOp::mem_value`] (valid only for
/// loads — see [`CommittedOp::load_value`]) and the stored value *is*
/// the first source operand (the store's data register), exposed via
/// [`CommittedOp::store_value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedOp {
    /// The architectural micro-op.
    pub op: MicroOp,
    /// Result value written to the destination register (0 for ops with
    /// no destination).
    pub result: u64,
    /// Value of source operand 1 at commit.
    pub src1_value: u64,
    /// Value of source operand 2 at commit.
    pub src2_value: u64,
    /// The value loaded from memory. Only meaningful when `op.kind` is
    /// [`rmt3d_workload::OpClass::Load`]; 0 otherwise. Read through
    /// [`CommittedOp::load_value`] unless mutating (fault injection).
    pub mem_value: u64,
    /// Leading-core cycle at which the instruction committed.
    pub commit_cycle: u64,
}

impl CommittedOp {
    /// The all-zero placeholder record: ring buffers use it to
    /// initialize unoccupied slots.
    pub const EMPTY: CommittedOp = CommittedOp {
        op: MicroOp::EMPTY,
        result: 0,
        src1_value: 0,
        src2_value: 0,
        mem_value: 0,
        commit_cycle: 0,
    };

    /// True when the checker must compare a register result for this op.
    pub fn needs_value_check(&self) -> bool {
        self.op.dest.is_some()
    }

    /// The value loaded from memory (loads only).
    #[inline]
    pub fn load_value(&self) -> Option<u64> {
        (self.op.kind == rmt3d_workload::OpClass::Load).then_some(self.mem_value)
    }

    /// The value stored (stores only; goes to the StB). The stored value
    /// is the store's data operand, i.e. source operand 1.
    #[inline]
    pub fn store_value(&self) -> Option<u64> {
        (self.op.kind == rmt3d_workload::OpClass::Store).then_some(self.src1_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_workload::{ArchReg, OpClass};

    fn op(kind: OpClass, dest: Option<ArchReg>) -> MicroOp {
        MicroOp {
            pc: 0x400_000,
            kind,
            dest,
            imm: 1,
            ..MicroOp::EMPTY
        }
    }

    #[test]
    fn value_check_follows_destination() {
        let with_dest = CommittedOp {
            op: op(OpClass::IntAlu, Some(ArchReg::new(1))),
            result: 42,
            ..CommittedOp::EMPTY
        };
        assert!(with_dest.needs_value_check());
        let store = CommittedOp {
            op: op(OpClass::Store, None),
            ..with_dest
        };
        assert!(!store.needs_value_check());
    }

    #[test]
    fn load_and_store_values_follow_kind() {
        let mut c = CommittedOp {
            op: op(OpClass::Load, Some(ArchReg::new(2))),
            mem_value: 77,
            src1_value: 5,
            ..CommittedOp::EMPTY
        };
        assert_eq!(c.load_value(), Some(77));
        assert_eq!(c.store_value(), None);
        c.op.kind = OpClass::Store;
        assert_eq!(c.load_value(), None);
        assert_eq!(c.store_value(), Some(5));
        c.op.kind = OpClass::IntAlu;
        assert_eq!(c.load_value(), None);
        assert_eq!(c.store_value(), None);
    }
}
