//! The composed L1I / L1D / NUCA-L2 / memory hierarchy of the leading
//! core (Table 1).

use crate::config::{CacheConfig, NucaLayout, NucaPolicy};
use crate::nuca::NucaCache;
use crate::set_assoc::{CacheStats, SetAssocCache};

/// Result of one data access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Total load-to-use latency in cycles.
    pub cycles: u32,
    /// Hit level: 1 = L1, 2 = L2, 3 = memory.
    pub level: u8,
}

/// Counters spanning all levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierarchyStats {
    /// L1 I-cache stats.
    pub l1i: CacheStats,
    /// L1 D-cache stats.
    pub l1d: CacheStats,
    /// L2 accesses (all L1 misses).
    pub l2_accesses: u64,
    /// L2 misses (to memory).
    pub l2_misses: u64,
    /// Instructions' worth of committed work when stats were last reset
    /// (set by the caller; used for misses-per-10K-instructions).
    pub instructions: u64,
}

impl HierarchyStats {
    /// L2 misses per 10 000 instructions — the metric the paper reports
    /// (1.43 at 6 MB, 1.25 at 15 MB, §3.3).
    pub fn l2_misses_per_10k(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 10_000.0 / self.instructions as f64
        }
    }
}

/// The leading core's cache hierarchy: 32 KB 2-way L1s, a banked NUCA L2
/// and a flat memory latency (300 cycles at 2 GHz, Table 1).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: NucaCache,
    /// Memory latency in cycles at the reference 2 GHz clock.
    mem_cycles: u32,
    instructions: u64,
}

impl CacheHierarchy {
    /// Builds the Table 1 hierarchy over a NUCA layout/policy.
    pub fn new(layout: NucaLayout, policy: NucaPolicy) -> CacheHierarchy {
        CacheHierarchy {
            l1i: SetAssocCache::new(CacheConfig::l1_32k_2way()),
            l1d: SetAssocCache::new(CacheConfig::l1_32k_2way()),
            l2: NucaCache::new(layout, policy),
            mem_cycles: 300,
            instructions: 0,
        }
    }

    /// Overrides the memory latency (in reference-clock cycles).
    pub fn set_memory_cycles(&mut self, cycles: u32) {
        self.mem_cycles = cycles;
    }

    /// Memory latency in reference-clock cycles.
    pub fn memory_cycles(&self) -> u32 {
        self.mem_cycles
    }

    /// The L2 NUCA cache (e.g. for per-bank power accounting).
    pub fn l2(&self) -> &NucaCache {
        &self.l2
    }

    /// Instruction-fetch access: returns the front-end stall in cycles
    /// beyond the pipelined L1I hit (0 on a hit).
    pub fn fetch(&mut self, pc: u64) -> u32 {
        if self.l1i.access(pc, false) {
            0
        } else {
            let l2 = self.l2.access(pc, false);
            if l2.hit {
                l2.cycles
            } else {
                l2.cycles + self.mem_cycles
            }
        }
    }

    /// Data access (load or store address `addr`). Returns the total
    /// latency and the level that serviced it.
    pub fn data_access(&mut self, addr: u64, write: bool) -> DataAccess {
        let l1_lat = self.l1d.config().latency;
        if self.l1d.access(addr, write) {
            DataAccess {
                cycles: l1_lat,
                level: 1,
            }
        } else {
            let l2 = self.l2.access(addr, write);
            if l2.hit {
                DataAccess {
                    cycles: l1_lat + l2.cycles,
                    level: 2,
                }
            } else {
                DataAccess {
                    cycles: l1_lat + l2.cycles + self.mem_cycles,
                    level: 3,
                }
            }
        }
    }

    /// Records committed instructions (for misses-per-10K reporting).
    pub fn add_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Warms the data path with a region `[base, base + bytes)`: every
    /// line is touched in L2 and L1D in address order. Emulates the
    /// steady state a long-running program would have reached (the paper
    /// simulates 100M-instruction windows of warmed-up SimPoints).
    /// Regions larger than a cache leave its most-recently-touched tail
    /// resident — the correct LRU steady state for a sequential sweep.
    pub fn prefill_data_region(&mut self, base: u64, bytes: u64) {
        let mut addr = base;
        while addr < base + bytes {
            self.l2.access(addr, false);
            self.l1d.access(addr, false);
            addr += 64;
        }
    }

    /// Warms the instruction path with the code footprint.
    pub fn prefill_code_region(&mut self, base: u64, bytes: u64) {
        let mut addr = base;
        while addr < base + bytes {
            self.l1i.access(addr, false);
            self.l2.access(addr, false);
            addr += 64;
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2_accesses: self.l2.stats().accesses,
            l2_misses: self.l2.stats().misses,
            instructions: self.instructions,
        }
    }

    /// Mean L2 hit latency observed so far (cycles).
    pub fn l2_mean_hit_cycles(&self) -> f64 {
        self.l2.stats().mean_hit_cycles()
    }

    /// Resets all statistics, keeping cache contents (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.instructions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets)
    }

    #[test]
    fn l1_hit_is_two_cycles() {
        let mut h = hierarchy();
        h.data_access(0x1000, false); // warm
        let a = h.data_access(0x1000, false);
        assert_eq!(a.level, 1);
        assert_eq!(a.cycles, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        h.data_access(0x1000, false);
        // Evict from L1 by filling its set (stride = sets*line = 16 KB).
        h.data_access(0x1000 + 16 * 1024, false);
        h.data_access(0x1000 + 32 * 1024, false);
        let a = h.data_access(0x1000, false);
        assert_eq!(a.level, 2);
        assert!(
            a.cycles > 2 && a.cycles < 40,
            "L2 hit ~2+18 cycles: {}",
            a.cycles
        );
    }

    #[test]
    fn memory_miss_costs_300_plus() {
        let mut h = hierarchy();
        let a = h.data_access(0x7000_0000, false);
        assert_eq!(a.level, 3);
        assert!(a.cycles >= 300, "memory access {}", a.cycles);
    }

    #[test]
    fn fetch_hits_are_free_after_warmup() {
        let mut h = hierarchy();
        assert!(h.fetch(0x40_0000) > 0, "cold I-fetch stalls");
        assert_eq!(h.fetch(0x40_0000), 0, "warm I-fetch");
    }

    #[test]
    fn misses_per_10k_metric() {
        let mut h = hierarchy();
        // Generate exactly 2 L2 misses over 20 000 "instructions".
        h.data_access(0x7000_0000, false);
        h.data_access(0x7100_0000, false);
        h.add_instructions(20_000);
        assert!((h.stats().l2_misses_per_10k() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_keeps_contents() {
        let mut h = hierarchy();
        h.data_access(0x1000, false);
        h.reset_stats();
        assert_eq!(h.stats().l1d.accesses, 0);
        let a = h.data_access(0x1000, false);
        assert_eq!(a.level, 1, "contents survive stat reset");
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let mut h = hierarchy();
        h.fetch(0x40_0000);
        // The same address via the data path still misses L1D.
        let a = h.data_access(0x40_0000, false);
        assert_ne!(a.level, 1, "L1I fill must not populate L1D");
    }
}
