//! Integration proof of the engine's two core guarantees: a 2-thread
//! sweep aggregates byte-identical results to the 1-thread run, and a
//! second run over the same cache directory is 100% cache hits.

use rmt3d::{ProcessorModel, RunScale};
use rmt3d_sweep::{codec, run_sweep, CacheMode, SweepOptions, SweepReport, SweepSpec};
use rmt3d_telemetry::{Event, NullSink, RecordingSink};
use rmt3d_workload::Benchmark;
use std::path::PathBuf;

fn spec() -> SweepSpec {
    SweepSpec::new(
        &[ProcessorModel::TwoDA, ProcessorModel::ThreeD2A],
        &[Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim],
        RunScale {
            warmup_instructions: 2_000,
            instructions: 15_000,
            thermal_grid: 25,
        },
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep's aggregated output as bytes: every record's result in
/// spec order through the canonical codec.
fn aggregate_bytes(report: &SweepReport) -> String {
    report
        .records
        .iter()
        .map(|r| codec::encode(r.outcome.as_ref().expect("job succeeded")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_threads_match_one_thread_and_second_run_is_all_cache_hits() {
    let jobs = spec().expand();
    assert!(jobs.len() >= 6, "need at least 6 (model, benchmark) jobs");
    let total = jobs.len();

    let serial = run_sweep(jobs.clone(), &SweepOptions::serial(), &mut NullSink).unwrap();
    assert_eq!(serial.executed, total);

    let dir = tmp_dir("identical");
    let parallel_opts = SweepOptions {
        jobs: 2,
        cache: CacheMode::Dir(dir.clone()),
        ..SweepOptions::default()
    };
    let parallel = run_sweep(jobs.clone(), &parallel_opts, &mut NullSink).unwrap();
    assert_eq!(parallel.executed, total);
    assert_eq!(parallel.cache_hits, 0);
    assert_eq!(
        aggregate_bytes(&serial),
        aggregate_bytes(&parallel),
        "2-thread aggregate must be byte-identical to 1-thread"
    );

    // Oversubscribed worker pool (more threads than jobs per model):
    // still byte-identical, uncached.
    let eight = run_sweep(
        jobs.clone(),
        &SweepOptions {
            jobs: 8,
            ..SweepOptions::default()
        },
        &mut NullSink,
    )
    .unwrap();
    assert_eq!(eight.executed, total);
    assert_eq!(
        aggregate_bytes(&serial),
        aggregate_bytes(&eight),
        "8-thread aggregate must be byte-identical to 1-thread"
    );

    // Second run over the same cache: zero simulations, all hits, and
    // the aggregate is still byte-identical.
    let sink = RecordingSink::new();
    let rerun = run_sweep(jobs, &parallel_opts, &mut sink.clone()).unwrap();
    assert_eq!(rerun.executed, 0, "no job may re-simulate");
    assert_eq!(rerun.cache_hits, total);
    assert_eq!(aggregate_bytes(&serial), aggregate_bytes(&rerun));

    // Per-job events are all cache hits; the run closes with exactly
    // one pool summary and one cache summary, both all-hit.
    let events = sink.events();
    assert_eq!(events.len(), total + 2, "hits + PoolStats + CacheStats");
    let mut seen_jobs = Vec::new();
    let mut pool_stats = Vec::new();
    let mut cache_stats = Vec::new();
    for e in events.iter() {
        match e {
            Event::JobCacheHit { job, total: t, .. } => {
                assert_eq!(*t, total as u64);
                seen_jobs.push(*job);
            }
            Event::PoolStats {
                executed,
                cache_hits,
                ..
            } => pool_stats.push((*executed, *cache_hits)),
            Event::CacheStats {
                hits,
                misses,
                entries,
                bytes,
                ..
            } => cache_stats.push((*hits, *misses, *entries, *bytes)),
            other => panic!("unexpected event on a fully-cached rerun: {other:?}"),
        }
    }
    seen_jobs.sort_unstable();
    assert_eq!(seen_jobs, (0..total as u64).collect::<Vec<_>>());
    assert_eq!(pool_stats, vec![(0, total as u64)]);
    let [(hits, misses, entries, bytes)] = cache_stats[..] else {
        panic!("exactly one CacheStats event, got {cache_stats:?}");
    };
    assert_eq!(hits, total as u64);
    assert_eq!(misses, 0);
    assert_eq!(entries, total as u64, "index.json is not a cache entry");
    assert!(bytes > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn executed_sweep_emits_started_and_finished_pairs_with_eta() {
    let jobs = spec().expand();
    let total = jobs.len();
    let sink = RecordingSink::new();
    let report = run_sweep(
        jobs,
        &SweepOptions {
            jobs: 2,
            ..SweepOptions::default()
        },
        &mut sink.clone(),
    )
    .unwrap();
    assert_eq!(report.executed, total);
    let events = sink.events();
    let started = events
        .iter()
        .filter(|e| matches!(e, Event::JobStarted { .. }))
        .count();
    let finished: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::JobFinished { ok, eta_nanos, .. } => Some((*ok, *eta_nanos)),
            _ => None,
        })
        .collect();
    assert_eq!(started, total);
    assert_eq!(finished.len(), total);
    assert!(finished.iter().all(|(ok, _)| *ok));
    // The last job to finish has nothing left: its ETA is zero.
    assert_eq!(finished.last().unwrap().1, 0);
}
