//! Rectangles and placed blocks, in millimetres.

use rmt3d_units::{Millimeters, SquareMillimeters};

/// An axis-aligned rectangle (lower-left origin), in millimetres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if width or height is not positive.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Rect {
        assert!(w > 0.0 && h > 0.0, "rectangle dimensions must be positive");
        Rect { x, y, w, h }
    }

    /// Area.
    pub fn area(&self) -> SquareMillimeters {
        SquareMillimeters(self.w * self.h)
    }

    /// Centre point.
    pub fn center(&self) -> (Millimeters, Millimeters) {
        (
            Millimeters(self.x + self.w / 2.0),
            Millimeters(self.y + self.h / 2.0),
        )
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge.
    pub fn top(&self) -> f64 {
        self.y + self.h
    }

    /// True when two rectangles overlap with positive area (shared edges
    /// do not count).
    pub fn overlaps(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x + EPS < other.right()
            && other.x + EPS < self.right()
            && self.y + EPS < other.top()
            && other.y + EPS < self.top()
    }

    /// True when `self` lies entirely within `outer` (edges may touch).
    pub fn within(&self, outer: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x >= outer.x - EPS
            && self.y >= outer.y - EPS
            && self.right() <= outer.right() + EPS
            && self.top() <= outer.top() + EPS
    }

    /// Manhattan distance between the centres of two rectangles.
    pub fn manhattan_to(&self, other: &Rect) -> Millimeters {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        Millimeters((ax.0 - bx.0).abs() + (ay.0 - by.0).abs())
    }
}

/// A block placed on a die.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedBlock<Id> {
    /// Block identity (power-map key).
    pub id: Id,
    /// Footprint.
    pub rect: Rect,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_center() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert!((r.area().0 - 12.0).abs() < 1e-12);
        let (cx, cy) = r.center();
        assert!((cx.0 - 2.5).abs() < 1e-12 && (cy.0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(2.0, 0.0, 2.0, 2.0); // touches a's edge
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "shared edges are not overlap");
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(Rect::new(0.0, 0.0, 10.0, 10.0).within(&outer));
        assert!(Rect::new(1.0, 1.0, 2.0, 2.0).within(&outer));
        assert!(!Rect::new(9.0, 9.0, 2.0, 2.0).within(&outer));
    }

    #[test]
    fn manhattan_distance() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0); // centre (1,1)
        let b = Rect::new(4.0, 3.0, 2.0, 2.0); // centre (5,4)
        assert!((a.manhattan_to(&b).0 - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_rect_panics() {
        let _ = Rect::new(0.0, 0.0, 0.0, 1.0);
    }
}
