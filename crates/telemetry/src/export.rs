//! Exporters: the JSONL streaming sink, the in-memory collector that
//! feeds the metrics registry, and the CSV writer for interval samples.

use crate::registry::MetricsRegistry;
use crate::sample::{IntervalSample, SampleRing};
use crate::sink::Sink;
use crate::Event;
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

/// Streams every event as one JSON line to an [`io::Write`]r.
///
/// Clonable: clones share the writer, so the sink can be handed to the
/// leader, the checker, and the system at once. In deterministic mode
/// wall-clock fields are written as 0 so two identical runs produce
/// byte-identical traces.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: Rc<RefCell<W>>,
    deterministic: bool,
    error: Rc<RefCell<Option<io::Error>>>,
}

// Manual impl: the derive would demand `W: Clone`, but clones share the
// writer through the `Rc` (so `Box<dyn Write>` works too).
impl<W: Write> Clone for JsonlSink<W> {
    fn clone(&self) -> Self {
        JsonlSink {
            out: Rc::clone(&self.out),
            deterministic: self.deterministic,
            error: Rc::clone(&self.error),
        }
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; wall clocks are reported as measured.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Rc::new(RefCell::new(out)),
            deterministic: false,
            error: Rc::new(RefCell::new(None)),
        }
    }

    /// Zeroes wall-clock fields for reproducible traces.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Appends the metrics-summary line (tagged `"event":"summary"`)
    /// and flushes. Call once, after the run.
    pub fn write_summary(&mut self, registry: &MetricsRegistry) {
        let line = registry.to_json_line();
        self.write_line(&line);
        let flushed = self.out.borrow_mut().flush();
        if let Err(e) = flushed {
            self.note_error(e);
        }
    }

    /// Flushes the underlying writer and surfaces the first I/O error
    /// hit while streaming, if any. Call once at the end of the run;
    /// errors during streaming are latched rather than panicking
    /// mid-simulation.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.borrow_mut().flush()?;
        match self.error.borrow_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn write_line(&mut self, line: &str) {
        let mut out = self.out.borrow_mut();
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            drop(out);
            self.note_error(e);
        }
    }

    fn note_error(&mut self, e: io::Error) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = event.to_json_line(self.deterministic);
        self.write_line(&line);
    }
}

/// In-memory aggregation: interval samples into a bounded ring, scalar
/// series into a [`MetricsRegistry`], and a per-kind event tally.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    /// The retained interval samples (bounded; see [`SampleRing`]).
    pub ring: SampleRing,
    /// Scalar series summarized at end of run.
    pub registry: MetricsRegistry,
    faults: u64,
    faults_corrected: u64,
    recoveries: u64,
    unrecoverable: u64,
    dfs_transitions: u64,
    jobs_executed: u64,
    jobs_failed: u64,
    job_cache_hits: u64,
}

impl Collector {
    fn observe(&mut self, event: &Event) {
        match event {
            Event::Counter { name, value, .. } => self.registry.record(name, *value),
            Event::DfsTransition {
                to_level, fraction, ..
            } => {
                self.dfs_transitions += 1;
                self.registry.record("dfs_level", f64::from(*to_level));
                self.registry.record("checker_fraction", *fraction);
            }
            Event::FaultInjected { corrected, .. } => {
                self.faults += 1;
                if *corrected {
                    self.faults_corrected += 1;
                }
            }
            Event::Recovery {
                penalty_cycles,
                unrecoverable,
                ..
            } => {
                self.recoveries += 1;
                if *unrecoverable {
                    self.unrecoverable += 1;
                }
                self.registry
                    .record("recovery_penalty_cycles", *penalty_cycles as f64);
            }
            Event::SolverIteration { residual, .. } => {
                self.registry.record("solver_residual", *residual);
            }
            Event::Interval(s) => {
                self.registry.record("interval_ipc", s.ipc);
                self.registry.record("rob_occupancy", f64::from(s.rob));
                self.registry.record("lsq_occupancy", f64::from(s.lsq));
                self.registry.record("rvq_occupancy", f64::from(s.rvq));
                self.registry.record("lvq_occupancy", f64::from(s.lvq));
                self.registry.record("boq_occupancy", f64::from(s.boq));
                self.registry.record("stb_occupancy", f64::from(s.stb));
                self.ring.push(*s);
            }
            Event::JobFinished { ok, wall_nanos, .. } => {
                self.jobs_executed += 1;
                if !*ok {
                    self.jobs_failed += 1;
                }
                self.registry.record("job_wall_nanos", *wall_nanos as f64);
            }
            Event::JobCacheHit { .. } => {
                self.job_cache_hits += 1;
            }
            Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::JobStarted { .. }
            | Event::CampaignTrial { .. } => {}
        }
    }

    /// Total faults injected (and how many ECC corrected).
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.faults, self.faults_corrected)
    }

    /// Total recoveries (and how many were unrecoverable).
    pub fn recovery_counts(&self) -> (u64, u64) {
        (self.recoveries, self.unrecoverable)
    }

    /// Number of DFS level changes observed.
    pub fn dfs_transitions(&self) -> u64 {
        self.dfs_transitions
    }

    /// Sweep-job tallies: `(executed, failed, cache_hits)`.
    pub fn job_counts(&self) -> (u64, u64, u64) {
        (self.jobs_executed, self.jobs_failed, self.job_cache_hits)
    }
}

/// Clonable sink that feeds a shared [`Collector`].
#[derive(Debug, Clone, Default)]
pub struct CollectorSink {
    inner: Rc<RefCell<Collector>>,
}

impl CollectorSink {
    /// Creates a collector with an unbounded sample ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector retaining at most `capacity` interval
    /// samples (0 = unbounded).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        CollectorSink {
            inner: Rc::new(RefCell::new(Collector {
                ring: SampleRing::new(capacity),
                ..Collector::default()
            })),
        }
    }

    /// Runs `f` against the aggregated state.
    pub fn with<R>(&self, f: impl FnOnce(&Collector) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Clones out the aggregated state.
    pub fn snapshot(&self) -> Collector {
        self.inner.borrow().clone()
    }
}

impl Sink for CollectorSink {
    fn record(&mut self, event: &Event) {
        self.inner.borrow_mut().observe(event);
    }
}

/// Column order of [`write_samples_csv`], matching [`IntervalSample`]'s
/// fields.
pub const CSV_HEADER: &str = "index,cycle,committed,ipc,rob,iq_int,iq_fp,lsq,rvq,lvq,boq,stb,\
checker_fraction,dl1_accesses,dl1_misses,l2_accesses,l2_misses,commit_stall_cycles";

/// Writes interval samples as CSV (header + one row per sample).
pub fn write_samples_csv<'a, W: Write>(
    out: &mut W,
    samples: impl Iterator<Item = &'a IntervalSample>,
) -> io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for s in samples {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.index,
            s.cycle,
            s.committed,
            s.ipc,
            s.rob,
            s.iq_int,
            s.iq_fp,
            s.lsq,
            s.rvq,
            s.lvq,
            s.boq,
            s.stb,
            s.checker_fraction,
            s.dl1_accesses,
            s.dl1_misses,
            s.l2_accesses,
            s.l2_misses,
            s.commit_stall_cycles,
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ParsedEvent;

    fn fault(cycle: u64, corrected: bool) -> Event {
        Event::FaultInjected {
            cycle,
            site: "lvq_value",
            bit: 1,
            corrected,
        }
    }

    #[test]
    fn jsonl_sink_streams_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&fault(10, true));
        sink.record(&Event::SpanBegin {
            name: "measure",
            cycle: 10,
        });
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.25);
        sink.write_summary(&reg);
        sink.finish().unwrap();
        let bytes = Rc::try_unwrap(sink.out).unwrap().into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            ParsedEvent::from_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[2].contains("\"event\":\"summary\""));
    }

    #[test]
    fn jsonl_clones_share_the_writer() {
        let sink = JsonlSink::new(Vec::new());
        let mut a = sink.clone();
        let mut b = sink.clone();
        a.record(&fault(1, false));
        b.record(&fault(2, false));
        let text = String::from_utf8(sink.out.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn collector_tallies_kinds() {
        let mut sink = CollectorSink::new();
        sink.record(&fault(1, true));
        sink.record(&fault(2, false));
        sink.record(&Event::Recovery {
            cycle: 3,
            penalty_cycles: 200,
            unrecoverable: false,
        });
        sink.record(&Event::DfsTransition {
            cycle: 4,
            from_level: 4,
            to_level: 5,
            fraction: 0.6,
        });
        sink.record(&Event::Interval(IntervalSample {
            index: 0,
            cycle: 100,
            ipc: 1.5,
            ..IntervalSample::default()
        }));
        assert_eq!(sink.with(|c| c.fault_counts()), (2, 1));
        assert_eq!(sink.with(|c| c.recovery_counts()), (1, 0));
        assert_eq!(sink.with(|c| c.dfs_transitions()), 1);
        assert_eq!(sink.with(|c| c.ring.len()), 1);
        let ipc = sink.with(|c| c.registry.summary("interval_ipc").unwrap());
        assert_eq!(ipc.mean, 1.5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let samples = [
            IntervalSample {
                index: 0,
                cycle: 100,
                committed: 80,
                ipc: 0.8,
                ..IntervalSample::default()
            },
            IntervalSample {
                index: 1,
                cycle: 200,
                committed: 90,
                ipc: 0.9,
                ..IntervalSample::default()
            },
        ];
        let mut buf = Vec::new();
        write_samples_csv(&mut buf, samples.iter()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,cycle,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same arity"
        );
        assert!(lines[1].starts_with("0,100,80,0.8"));
    }
}
