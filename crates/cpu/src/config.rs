//! Core pipeline configurations (paper Table 1).

/// Out-of-order leading-core configuration.
///
/// Defaults reproduce the paper's Table 1 SimpleScalar parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instruction fetch queue capacity.
    pub ifq_size: u32,
    /// Dispatch (rename) width per cycle.
    pub dispatch_width: u32,
    /// Commit width per cycle.
    pub commit_width: u32,
    /// Re-order buffer capacity.
    pub rob_size: u32,
    /// Integer issue-queue capacity.
    pub iq_int_size: u32,
    /// Floating-point issue-queue capacity.
    pub iq_fp_size: u32,
    /// Load/store queue capacity.
    pub lsq_size: u32,
    /// Integer ALUs (also used for address generation).
    pub int_alu: u32,
    /// Integer multipliers.
    pub int_mul: u32,
    /// FP adders.
    pub fp_alu: u32,
    /// FP multipliers.
    pub fp_mul: u32,
    /// Front-end refill cycles charged after a branch mispredict resolves
    /// (fetch-to-dispatch depth; Table 1 lists a 12-cycle mispredict
    /// loop, most of which is the resolve time itself).
    pub frontend_refill: u32,
}

impl CoreConfig {
    /// The paper's Table 1 leading core.
    pub fn leading_ev7_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            ifq_size: 32,
            dispatch_width: 4,
            commit_width: 4,
            rob_size: 80,
            iq_int_size: 20,
            iq_fp_size: 15,
            lsq_size: 40,
            int_alu: 4,
            int_mul: 2,
            fp_alu: 1,
            fp_mul: 1,
            frontend_refill: 3,
        }
    }

    /// The checker core operating *as a leading core* (paper §2: "it is
    /// also capable of executing a leading thread by itself" after a
    /// hard error disables the out-of-order core). Approximated as a
    /// minimal-window machine: without RVP or the BOQ it must use its
    /// own predictor and caches, and its tiny instruction window buys
    /// almost no latency tolerance.
    pub fn checker_as_leader() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            ifq_size: 8,
            dispatch_width: 4,
            commit_width: 4,
            rob_size: 8,
            iq_int_size: 4,
            iq_fp_size: 4,
            lsq_size: 4,
            int_alu: 4,
            int_mul: 2,
            fp_alu: 1,
            fp_mul: 1,
            frontend_refill: 2,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns an error message when any capacity or width is zero.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            self.fetch_width,
            self.ifq_size,
            self.dispatch_width,
            self.commit_width,
            self.rob_size,
            self.iq_int_size,
            self.iq_fp_size,
            self.lsq_size,
            self.int_alu,
        ];
        if positive.contains(&0) {
            return Err("core widths and capacities must be positive".to_string());
        }
        if self.rob_size > 192 {
            return Err("ROB larger than the dependence-tracking window".to_string());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::leading_ev7_like()
    }
}

/// In-order trailing (checker) core configuration (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailerConfig {
    /// In-order dispatch width per cycle.
    pub width: u32,
    /// Register-value-queue read/compare ports: bounds how many
    /// verifications can retire per cycle. This is the practical ILP
    /// limit of the checker (its effective IPC), and with the paper's
    /// DFS heuristic it puts the common operating point near 0.6 f
    /// (Fig. 7).
    pub verify_ports: u32,
    /// Whether register value prediction (§2.1) is enabled: operands are
    /// read from the RVQ, removing all data-dependence stalls.
    pub rvp: bool,
    /// Maximum instructions in flight inside the checker pipeline
    /// (dispatched but not yet verified). A real in-order pipeline is
    /// shallow; bounding it also keeps the RVQ occupancy an honest
    /// signal for the DFS controller.
    pub pipeline_depth: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multipliers.
    pub int_mul: u32,
    /// FP adders.
    pub fp_alu: u32,
    /// FP multipliers.
    pub fp_mul: u32,
}

impl TrailerConfig {
    /// The paper's in-order checker: 4-wide with RVP.
    pub fn checker() -> TrailerConfig {
        TrailerConfig {
            width: 4,
            verify_ports: 3,
            rvp: true,
            pipeline_depth: 16,
            int_alu: 4,
            int_mul: 2,
            fp_alu: 1,
            fp_mul: 1,
        }
    }

    /// A checker without register value prediction (for the ablation
    /// study: shows why the paper needs RVP to sustain checker ILP).
    pub fn checker_no_rvp() -> TrailerConfig {
        TrailerConfig {
            rvp: false,
            ..TrailerConfig::checker()
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns an error message when any width is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.verify_ports == 0 || self.int_alu == 0 {
            return Err("trailer widths must be positive".to_string());
        }
        if self.pipeline_depth == 0 {
            return Err("trailer pipeline depth must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for TrailerConfig {
    fn default() -> TrailerConfig {
        TrailerConfig::checker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::leading_ev7_like();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 80);
        assert_eq!(c.iq_int_size, 20);
        assert_eq!(c.iq_fp_size, 15);
        assert_eq!(c.lsq_size, 40);
        assert_eq!((c.int_alu, c.int_mul, c.fp_alu, c.fp_mul), (4, 2, 1, 1));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_widths() {
        let mut c = CoreConfig::leading_ev7_like();
        c.fetch_width = 0;
        assert!(c.validate().is_err());
        let mut t = TrailerConfig::checker();
        t.verify_ports = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn rob_window_bound() {
        let mut c = CoreConfig::leading_ev7_like();
        c.rob_size = 500;
        assert!(c.validate().is_err());
    }

    #[test]
    fn degraded_mode_config_is_valid_and_narrow() {
        let c = CoreConfig::checker_as_leader();
        assert!(c.validate().is_ok());
        assert!(c.rob_size < CoreConfig::leading_ev7_like().rob_size);
    }

    #[test]
    fn checker_variants() {
        assert!(TrailerConfig::checker().rvp);
        assert!(!TrailerConfig::checker_no_rvp().rvp);
        assert_eq!(TrailerConfig::default(), TrailerConfig::checker());
    }
}
