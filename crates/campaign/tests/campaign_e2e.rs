//! End-to-end campaign tests: determinism across worker counts, the
//! seeded-bug shrinker demonstration, and replay of the committed
//! regression fixture.

use rmt3d_campaign::{
    parse_fixture, replay_fixture, run_campaign, shrink, write_fixture, CampaignSpec,
};
use rmt3d_rmt::FaultSite;
use rmt3d_telemetry::NullSink;

/// The paper's coverage claim holds on the smoke grid, and the JSONL
/// report is byte-identical between a serial and a parallel run — the
/// campaign is a pure function of its spec, worker count
/// notwithstanding.
#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    let spec = CampaignSpec::smoke(7);
    let serial = run_campaign(&spec, 1, &mut NullSink).expect("serial runs");
    let parallel = run_campaign(&spec, 4, &mut NullSink).expect("parallel runs");
    assert!(serial.full_coverage(), "{}", serial.summary());
    assert_eq!(serial.to_jsonl(), parallel.to_jsonl());
    assert_eq!(serial.summary(), parallel.summary());
}

/// Seeded-bug demonstration: disable trailer-regfile ECC (the oracle's
/// own protection) and the campaign finds real violations; the shrinker
/// minimizes the first one, and the emitted fixture replays.
#[test]
fn sabotaged_campaign_shrinks_violation_to_replayable_fixture() {
    let mut spec = CampaignSpec::smoke(21)
        .sabotage(FaultSite::TrailerRegfile)
        .expect("trailer regfile carries ECC");
    spec.sites = vec![FaultSite::TrailerRegfile];
    spec.faults_per_cell = 12;
    let report = run_campaign(&spec, 0, &mut NullSink).expect("campaign runs");
    let violations = report.violations();
    assert!(
        !violations.is_empty(),
        "sabotaged ECC must surface violations: {}",
        report.summary()
    );

    let victim = violations[0];
    let violation = victim
        .outcome
        .as_ref()
        .expect("violating trial ran")
        .violation
        .expect("violating trial has a violation");
    let shrunk = shrink(&victim.spec, 200).expect("violating trial shrinks");
    assert_eq!(shrunk.result.violation, Some(violation));
    assert!(
        shrunk.spec.instructions <= victim.spec.instructions
            && shrunk.spec.inject_at <= victim.spec.inject_at,
        "shrinking never grows the reproduction"
    );
    assert!(
        shrunk.accepted > 0,
        "a mid-run violation admits at least a tail truncation"
    );

    let dir = std::env::temp_dir().join("rmt3d_campaign_e2e_fixture");
    let path = write_fixture(&dir, &shrunk.spec, violation).expect("fixture writes");
    let text = std::fs::read_to_string(&path).expect("fixture reads");
    assert_eq!(
        replay_fixture(&text),
        Ok(true),
        "minimized fixture reproduces its violation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed regression fixture — minimized from a real sabotaged
/// campaign run — still reproduces its violation.
#[test]
fn committed_fixture_still_reproduces() {
    let text = include_str!("fixtures/silent_corruption_trailer_regfile_gzip.json");
    let (spec, violation) = parse_fixture(text).expect("committed fixture parses");
    assert_eq!(spec.site, FaultSite::TrailerRegfile);
    assert!(!spec.ecc.trailer_regfile, "fixture records the sabotage");
    assert_eq!(
        replay_fixture(text),
        Ok(true),
        "{spec:?} no longer reproduces {violation:?}"
    );
}
