//! The coupled reliable processor: leading core + queues + DFS-throttled
//! checker core, with fault injection and recovery (paper §2, Fig. 1).

use crate::dfs::{DfsConfig, DfsController, DFS_LEVELS};
use crate::fault::{DirectedOutcome, DrawnFault, EccConfig, FaultFate, FaultInjector, FaultSite};
use crate::queues::{IntercoreQueues, QueueConfig};
use rmt3d_cpu::{
    load_memory_value, CheckOutcome, CommittedOp, InOrderCore, OooCore, TrailerConfig, Verification,
};
use rmt3d_telemetry::{emit, CpiComponent, CpiStack, Event, NullSink, Sink};
use rmt3d_workload::OpClass;

// Child module so the threaded engine can reach the private fields.
#[path = "parallel.rs"]
pub(crate) mod parallel;
pub use parallel::Engine;

/// Configuration of the coupled RMT system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmtConfig {
    /// Inter-core queue capacities.
    pub queues: QueueConfig,
    /// DFS policy for the checker.
    pub dfs: DfsConfig,
    /// Checker pipeline configuration.
    pub trailer: TrailerConfig,
    /// Leader cycles charged per recovery (pipeline flush + restore +
    /// refill).
    pub recovery_penalty: u64,
}

impl RmtConfig {
    /// The paper's configuration.
    pub fn paper() -> RmtConfig {
        RmtConfig {
            queues: QueueConfig::paper(),
            dfs: DfsConfig::paper(),
            trailer: TrailerConfig::checker(),
            recovery_penalty: 200,
        }
    }
}

impl Default for RmtConfig {
    fn default() -> RmtConfig {
        RmtConfig::paper()
    }
}

/// Reliability and coupling statistics of an RMT run.
#[derive(Debug, Clone, Default)]
pub struct RmtStats {
    /// Errors detected by the checker (mismatched verifications).
    pub detected: u64,
    /// Recovery procedures executed.
    pub recoveries: u64,
    /// Recoveries after which the trailer state disagreed with the
    /// golden architectural state (detected but unrecoverable — the
    /// §3.5 multi-error concern).
    pub unrecoverable: u64,
    /// Leader cycles spent in recovery stalls.
    pub recovery_stall_cycles: u64,
    /// Instructions verified clean.
    pub verified_ok: u64,
    /// Sum of RVQ occupancy samples (for mean slack).
    pub slack_sum: u64,
    /// Number of slack samples.
    pub slack_samples: u64,
    /// Leader cycles spent synchronizing for interrupt service (§2).
    pub interrupt_sync_cycles: u64,
    /// Interrupts serviced.
    pub interrupts_serviced: u64,
}

impl RmtStats {
    /// Mean slack (RVQ occupancy) in instructions.
    pub fn mean_slack(&self) -> f64 {
        if self.slack_samples == 0 {
            0.0
        } else {
            self.slack_sum as f64 / self.slack_samples as f64
        }
    }
}

/// The coupled leading-core / checker-core system.
///
/// One call to [`RmtSystem::step`] advances one leading-core cycle; the
/// checker advances fractionally according to the DFS controller's
/// current normalized frequency (GALS-style decoupling, §2.1).
#[derive(Debug)]
pub struct RmtSystem<S: Sink = NullSink> {
    leader: OooCore<S>,
    trailer: InOrderCore<S>,
    queues: IntercoreQueues,
    dfs: DfsController,
    injector: Option<FaultInjector>,
    config: RmtConfig,
    /// Fractional trailer-cycle accumulator.
    accum: f64,
    /// Remaining recovery stall cycles.
    recovery_cooldown: u64,
    /// Golden architectural register file: updated with fault-free
    /// recomputation of every committed op; the oracle for recovery
    /// verification.
    golden: [u64; 64],
    stats: RmtStats,
    commit_buf: Vec<CommittedOp>,
    verify_buf: Vec<Verification>,
    replay_scratch: Vec<CommittedOp>,
    fault_fates: Vec<(FaultSite, FaultFate)>,
    /// Engine selection for [`RmtSystem::run_instructions`].
    engine: Engine,
    /// Set once any directed fault has been injected; the threaded
    /// engine (which cannot recover) then stays off for good.
    tainted: bool,
    sink: S,
}

impl RmtSystem {
    /// Couples a leading core to a fresh checker, telemetry disabled.
    pub fn new(leader: OooCore, config: RmtConfig) -> RmtSystem {
        RmtSystem::with_sink(leader, config, NullSink)
    }
}

impl<S: Sink + Clone> RmtSystem<S> {
    /// Couples a leading core to a fresh checker; the sink is cloned
    /// into the checker and also receives system-level events (DFS
    /// transitions, fault injections, recoveries). The leader should
    /// have been built with a clone of the same sink
    /// ([`OooCore::with_sink`]).
    pub fn with_sink(leader: OooCore<S>, config: RmtConfig, sink: S) -> RmtSystem<S> {
        RmtSystem {
            leader,
            trailer: InOrderCore::with_sink(config.trailer, sink.clone()),
            queues: IntercoreQueues::new(config.queues),
            dfs: DfsController::new(config.dfs),
            injector: None,
            config,
            accum: 0.0,
            recovery_cooldown: 0,
            golden: [0; 64],
            stats: RmtStats::default(),
            commit_buf: Vec::with_capacity(8),
            verify_buf: Vec::with_capacity(8),
            replay_scratch: Vec::new(),
            fault_fates: Vec::new(),
            engine: Engine::default(),
            tainted: false,
            sink,
        }
    }
}

impl<S: Sink> RmtSystem<S> {
    /// Enables random fault injection.
    pub fn with_fault_injection(mut self, seed: u64, rate: f64, ecc: EccConfig) -> RmtSystem<S> {
        self.injector = Some(FaultInjector::new(seed, rate, ecc));
        self
    }

    /// The leading core.
    pub fn leader(&self) -> &OooCore<S> {
        &self.leader
    }

    /// The checker core.
    pub fn trailer(&self) -> &InOrderCore<S> {
        &self.trailer
    }

    /// The DFS controller (Fig. 7 histogram lives here).
    pub fn dfs(&self) -> &DfsController {
        &self.dfs
    }

    /// The queue complex.
    pub fn queues(&self) -> &IntercoreQueues {
        &self.queues
    }

    /// Reliability statistics.
    pub fn stats(&self) -> &RmtStats {
        &self.stats
    }

    /// Fault injector statistics, when injection is enabled.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Selects the execution engine for
    /// [`RmtSystem::run_instructions`]. The default is [`Engine::Auto`].
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// `(site, fate)` record of every applied (non-ECC-corrected) fault.
    pub fn fault_fates(&self) -> &[(FaultSite, FaultFate)] {
        &self.fault_fates
    }

    /// Leader cycles including recovery stalls.
    pub fn total_cycles(&self) -> u64 {
        self.leader.activity().cycles + self.stats.recovery_stall_cycles
    }

    /// Leader CPI stack lifted into the system cycle domain: the
    /// per-core stack (populated only when the sink is enabled) plus
    /// one `Recovery` cycle per recovery stall, during which the leader
    /// core does not step. When the sink is enabled the components sum
    /// exactly to [`RmtSystem::total_cycles`].
    pub fn leader_cpi_stack(&self) -> CpiStack {
        let mut s = *self.leader.cpi_stack();
        s.add_cycles(CpiComponent::Recovery, self.stats.recovery_stall_cycles);
        s
    }

    /// Checker CPI stack lifted into the same (leader) cycle domain:
    /// the trailer's per-tick stack, plus `Recovery` stalls, plus one
    /// `DfsThrottled` cycle for every leader cycle the checker's gated
    /// clock did not tick. The DFS fraction never exceeds 1, so trailer
    /// ticks never exceed leader cycles and the composition also sums
    /// to [`RmtSystem::total_cycles`] when the sink is enabled.
    pub fn trailer_cpi_stack(&self) -> CpiStack {
        let mut s = *self.trailer.cpi_stack();
        s.add_cycles(CpiComponent::Recovery, self.stats.recovery_stall_cycles);
        let leader_cycles = self.leader.activity().cycles;
        let trailer_ticks = self.trailer.activity().cycles;
        s.add_cycles(
            CpiComponent::DfsThrottled,
            leader_cycles.saturating_sub(trailer_ticks),
        );
        s
    }

    /// End-to-end IPC of the reliable processor: committed instructions
    /// over leader cycles plus recovery stalls.
    pub fn effective_ipc(&self) -> f64 {
        let c = self.total_cycles();
        if c == 0 {
            0.0
        } else {
            self.leader.activity().committed as f64 / c as f64
        }
    }

    /// Warm the leader's caches and reset statistics (see
    /// [`OooCore::prefill_caches`]).
    pub fn prefill_caches(&mut self) {
        self.leader.prefill_caches();
    }

    /// Advances one leading-core cycle.
    pub fn step(&mut self) {
        if self.recovery_cooldown > 0 {
            self.recovery_cooldown -= 1;
            self.stats.recovery_stall_cycles += 1;
            return;
        }
        // Back-pressure: stall leader commit if any queue is near full.
        let can = self.queues.can_accept(4);
        self.leader.set_commit_stall(!can);
        self.commit_buf.clear();
        self.leader.step_cycle(&mut self.commit_buf);

        // Golden shadow execution + fault injection + enqueue.
        let cycle = self.leader.activity().cycles;
        for i in 0..self.commit_buf.len() {
            let mut item = self.commit_buf[i];
            self.update_golden(&item);
            if let Some(inj) = self.injector.as_mut() {
                if let Some((fault, corrected)) = inj.draw_event() {
                    emit(&mut self.sink, || Event::FaultInjected {
                        cycle,
                        site: fault.site.name(),
                        bit: fault.bit,
                        corrected,
                    });
                    if corrected {
                        // Absorbed by ECC; invisible to execution.
                    } else if fault.site == FaultSite::TrailerRegfile {
                        self.trailer.flip_regfile_bit(fault.reg, fault.bit);
                        self.fault_fates.push((fault.site, FaultFate::Masked));
                    } else if FaultInjector::apply_to_payload(fault, &mut item) {
                        // Fate resolved when (if) the checker flags it.
                        self.fault_fates.push((fault.site, FaultFate::Masked));
                    }
                }
            }
            self.queues.push(item);
        }

        // DFS decision and fractional trailer advance.
        let level_before = self.dfs.current().level();
        self.dfs.tick(self.queues.rvq_fill());
        let after = self.dfs.current();
        if after.level() != level_before {
            emit(&mut self.sink, || Event::DfsTransition {
                cycle,
                from_level: level_before,
                to_level: after.level(),
                fraction: after.fraction(),
            });
        }
        self.stats.slack_sum += self.queues.occupancy().rvq as u64;
        self.stats.slack_samples += 1;

        self.accum += self.dfs.current().fraction();
        while self.accum >= 1.0 {
            self.accum -= 1.0;
            self.verify_buf.clear();
            self.trailer
                .step_cycle(self.queues.stream_mut(), &mut self.verify_buf);
            if !self.verify_buf.is_empty() {
                self.process_verifications();
            }
        }
    }

    fn update_golden(&mut self, item: &CommittedOp) {
        golden_update(&mut self.golden, item);
    }

    fn process_verifications(&mut self) {
        let mut any_error = false;
        let verifications = std::mem::take(&mut self.verify_buf);
        for v in verifications.iter() {
            self.queues.on_trailer_consumed(v.kind);
            if v.outcome == CheckOutcome::Ok {
                self.stats.verified_ok += 1;
            } else {
                self.stats.detected += 1;
                any_error = true;
            }
        }
        if any_error {
            self.recover();
            // Mark the most recent unresolved fault as detected.
            let recovered = self.trailer.regfile() == &self.golden;
            let cycle = self.leader.activity().cycles;
            let penalty = self.config.recovery_penalty;
            emit(&mut self.sink, || Event::Recovery {
                cycle,
                penalty_cycles: penalty,
                unrecoverable: !recovered,
            });
            if let Some(last) = self
                .fault_fates
                .iter_mut()
                .rev()
                .find(|(_, fate)| *fate == FaultFate::Masked)
            {
                last.1 = if recovered {
                    FaultFate::DetectedRecovered
                } else {
                    FaultFate::DetectedUnrecoverable
                };
            }
        }
        self.verify_buf = verifications;
        self.verify_buf.clear();
    }

    /// Recovery (§2): squash everything in flight, re-execute it
    /// architecturally from the trailer's checked state, restore the
    /// leader's register file from the trailer, and charge the stall.
    fn recover(&mut self) {
        self.stats.recoveries += 1;
        self.recovery_cooldown = self.config.recovery_penalty;

        // Replay the flagged verification batch tail (ops the trailer
        // refused to retire), then the trailer pipe, then the queued
        // backlog — all in program order. The scratch buffer lives on
        // the system so repeated recoveries allocate nothing.
        let mut replay = std::mem::take(&mut self.replay_scratch);
        replay.clear();
        // The trailer parked the payload of every failed check; those are
        // exactly the ops of the flagged tail it refused to retire.
        self.trailer.drain_error_items_into(&mut replay);
        self.trailer.drain_pipe_into(&mut replay);
        replay.extend(self.queues.stream_mut().drain(..));
        self.queues.squash();
        for item in &replay {
            self.trailer.architectural_replay(item);
        }
        self.replay_scratch = replay;
        let rf = *self.trailer.regfile();
        self.leader.restore_regfile(&rf);
        if rf != self.golden {
            self.stats.unrecoverable += 1;
        }
    }

    /// Injects one directed single-bit fault (the campaign harness's
    /// entry point; random soft-error arrival uses
    /// [`RmtSystem::with_fault_injection`] instead).
    ///
    /// ECC-protected sites absorb the strike without touching state.
    /// `TrailerRegfile` strikes flip the checker's own register file.
    /// Payload sites strike the *newest* suitable op in the RVQ stream —
    /// the fault hits the value as it enters the queue, so the detection
    /// latency observed by the caller measures the full leader/checker
    /// slack. Returns [`DirectedOutcome::NoTarget`] when nothing
    /// suitable is queued; the caller may step and retry.
    pub fn inject_directed(&mut self, fault: DrawnFault, ecc: EccConfig) -> DirectedOutcome {
        self.tainted = true;
        let cycle = self.leader.activity().cycles;
        if ecc.corrects(fault.site) {
            emit(&mut self.sink, || Event::FaultInjected {
                cycle,
                site: fault.site.name(),
                bit: fault.bit,
                corrected: true,
            });
            return DirectedOutcome::CorrectedByEcc;
        }
        if fault.site == FaultSite::TrailerRegfile {
            self.trailer.flip_regfile_bit(fault.reg, fault.bit);
        } else {
            let Some(item) = self
                .queues
                .stream_mut()
                .iter_mut()
                .rev()
                .find(|i| fault.site.can_strike(i))
            else {
                return DirectedOutcome::NoTarget;
            };
            let applied = FaultInjector::apply_to_payload(fault, item);
            debug_assert!(applied, "can_strike guarantees a mutable target");
        }
        // Fate starts Masked; process_verifications upgrades it when
        // (if) the checker flags the corruption.
        self.fault_fates.push((fault.site, FaultFate::Masked));
        emit(&mut self.sink, || Event::FaultInjected {
            cycle,
            site: fault.site.name(),
            bit: fault.bit,
            corrected: false,
        });
        DirectedOutcome::Applied
    }

    /// Runs until `n` instructions have committed on the leader.
    ///
    /// Dispatches to the threaded leader/checker engine when eligible
    /// (see [`Engine`]): telemetry disabled, no fault injection, and
    /// no directed strikes ever applied. The threaded schedule is
    /// bit-identical to the serial one, so the engine choice is purely
    /// a wall-clock optimization.
    pub fn run_instructions(&mut self, n: u64)
    where
        S: 'static,
    {
        if self.threaded_eligible() {
            if let Some(sys) =
                (self as &mut dyn std::any::Any).downcast_mut::<RmtSystem<NullSink>>()
            {
                sys.run_instructions_threaded(n);
                return;
            }
        }
        let start = self.leader.activity().committed;
        while self.leader.activity().committed - start < n {
            self.step();
        }
    }

    /// True when `run_instructions` may use the threaded engine: it
    /// cannot observe faults (no recovery path) or emit telemetry, and
    /// the batch slots bound the commit width.
    fn threaded_eligible(&self) -> bool {
        let want = match self.engine {
            Engine::Serial => false,
            Engine::Threaded => true,
            Engine::Auto => std::thread::available_parallelism().is_ok_and(|p| p.get() > 1),
        };
        want && !S::ENABLED
            && self.injector.is_none()
            && !self.tainted
            && self.recovery_cooldown == 0
            && self.leader.config().commit_width as usize <= parallel::MAX_COMMIT
    }

    /// Services an external interrupt or exception (§2: "the leading
    /// thread must wait for the trailing thread to catch up before
    /// servicing the interrupt").
    ///
    /// Stalls the leader and runs the checker at full speed until every
    /// in-flight instruction is verified, then returns the number of
    /// leader cycles the synchronization cost. The architectural state
    /// at return is fully checked — safe to expose to a handler.
    pub fn service_interrupt(&mut self) -> u64 {
        let mut cycles = 0u64;
        self.leader.set_commit_stall(true);
        while self.queues.occupancy().rvq > 0 || self.trailer.in_flight() > 0 {
            // The leader pipeline keeps ticking (stalled at commit); the
            // checker catches up at its peak frequency.
            self.verify_buf.clear();
            self.trailer
                .step_cycle(self.queues.stream_mut(), &mut self.verify_buf);
            if !self.verify_buf.is_empty() {
                self.process_verifications();
            }
            cycles += 1;
            assert!(
                cycles < 1_000_000,
                "interrupt synchronization failed to converge"
            );
        }
        self.leader.set_commit_stall(false);
        self.stats.interrupt_sync_cycles += cycles;
        self.stats.interrupts_serviced += 1;
        cycles
    }

    /// Drains the checker until it has verified everything the leader
    /// committed (call after the last `run_instructions`).
    pub fn drain(&mut self) {
        let mut idle = 0;
        while self.queues.occupancy().rvq > 0 || self.trailer.in_flight() > 0 {
            self.verify_buf.clear();
            self.trailer
                .step_cycle(self.queues.stream_mut(), &mut self.verify_buf);
            if self.verify_buf.is_empty() {
                idle += 1;
                assert!(idle < 10_000, "checker failed to drain");
            } else {
                idle = 0;
                self.process_verifications();
            }
        }
    }

    /// The Fig. 7 histogram: fraction of intervals per 0.1 f frequency
    /// level.
    pub fn frequency_histogram(&self) -> [f64; DFS_LEVELS] {
        self.dfs.histogram_fractions()
    }

    /// True when the leader's architectural state matches the golden
    /// shadow (no silent corruption escaped the checker).
    pub fn leader_matches_golden(&self) -> bool {
        self.leader.regfile() == &self.golden
    }

    /// True when the checker's architectural state matches the golden
    /// shadow. Only meaningful after [`RmtSystem::drain`] (the trailer
    /// lags the leader while ops are in flight); a mismatch then means
    /// the recovery point itself is corrupt — latent state corruption
    /// that a future recovery would propagate.
    pub fn trailer_matches_golden(&self) -> bool {
        self.trailer.regfile() == &self.golden
    }
}

/// Fault-free shadow execution of one committed op against the golden
/// register file (the recovery-verification oracle). Shared by the
/// serial step loop and the threaded checker.
pub(crate) fn golden_update(golden: &mut [u64; 64], item: &CommittedOp) {
    let op = item.op;
    let s1 = op.src1_reg.map_or(0, |r| golden[r.index() as usize]);
    let s2 = op.src2_reg.map_or(0, |r| golden[r.index() as usize]);
    let result = match op.kind {
        OpClass::Load => load_memory_value(op.mem_addr),
        OpClass::Store | OpClass::Branch => 0,
        _ => op.compute_result(s1, s2),
    };
    if let Some(d) = op.dest {
        golden[d.index() as usize] = result;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
    use rmt3d_cpu::CoreConfig;
    use rmt3d_workload::{Benchmark, TraceGenerator};

    fn system(b: Benchmark) -> RmtSystem {
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
        );
        RmtSystem::new(leader, RmtConfig::paper())
    }

    #[test]
    fn composed_cpi_stacks_sum_to_total_cycles() {
        use rmt3d_telemetry::RecordingSink;
        let sink = RecordingSink::new();
        let leader = OooCore::with_sink(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Gzip.profile()),
            CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
            sink.clone(),
        );
        let mut s = RmtSystem::with_sink(leader, RmtConfig::paper(), sink).with_fault_injection(
            7,
            2e-4,
            EccConfig::paper(),
        );
        s.prefill_caches();
        s.run_instructions(30_000);
        s.drain();
        let leader_cpi = s.leader_cpi_stack();
        let trailer_cpi = s.trailer_cpi_stack();
        assert_eq!(leader_cpi.total(), s.total_cycles());
        assert_eq!(trailer_cpi.total(), s.total_cycles());
        assert_eq!(
            leader_cpi.get(CpiComponent::Recovery),
            s.stats().recovery_stall_cycles
        );
        // The DFS-throttled checker runs at a fraction of the leader
        // clock: gated-off cycles must be attributed, not lost.
        assert!(trailer_cpi.get(CpiComponent::DfsThrottled) > 0);
    }

    #[test]
    fn fault_free_run_is_clean() {
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(30_000);
        s.drain();
        assert_eq!(s.stats().detected, 0);
        assert_eq!(s.stats().recoveries, 0);
        assert!(s.leader_matches_golden());
        assert!(s.stats().verified_ok >= 30_000);
    }

    #[test]
    fn checker_keeps_up_without_stalling_leader() {
        // Paper Fig. 1: "No performance loss for the leading core".
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(60_000);
        let stall =
            s.leader().activity().commit_stall_cycles as f64 / s.leader().activity().cycles as f64;
        assert!(stall < 0.02, "leader stalled {:.3} of cycles", stall);
    }

    #[test]
    fn checker_runs_below_peak_frequency() {
        let mut s = system(Benchmark::Twolf);
        s.prefill_caches();
        s.run_instructions(120_000);
        let mean = s.dfs().mean_fraction();
        assert!(
            mean > 0.2 && mean < 0.95,
            "checker should settle well below peak, got {mean}"
        );
    }

    #[test]
    fn injected_faults_are_detected_and_recovered() {
        let mut s = system(Benchmark::Gzip).with_fault_injection(7, 2e-4, EccConfig::paper());
        s.prefill_caches();
        s.run_instructions(50_000);
        s.drain();
        assert!(s.injector().unwrap().injected() > 0, "faults were injected");
        assert!(s.stats().detected > 0, "checker detected errors");
        assert!(s.stats().recoveries > 0);
        // With full ECC every recovery must restore golden state.
        assert_eq!(s.stats().unrecoverable, 0, "paper config recovers fully");
        assert!(s.leader_matches_golden(), "no silent corruption");
    }

    #[test]
    fn recovery_costs_cycles() {
        let run = |rate: f64| {
            let mut s = system(Benchmark::Gzip).with_fault_injection(3, rate, EccConfig::paper());
            s.prefill_caches();
            s.run_instructions(40_000);
            (s.effective_ipc(), s.stats().recoveries)
        };
        let (clean_ipc, r0) = run(0.0);
        let (faulty_ipc, r1) = run(5e-3);
        assert_eq!(r0, 0);
        assert!(r1 > 0);
        assert!(
            faulty_ipc < clean_ipc,
            "recoveries must cost throughput: {faulty_ipc} vs {clean_ipc}"
        );
    }

    #[test]
    fn boq_faults_are_harmless() {
        // Only inject BOQ-class faults by using a payload mutation
        // directly: branch outcome flips must never corrupt state.
        let mut s = system(Benchmark::Vpr).with_fault_injection(11, 1e-3, EccConfig::paper());
        s.prefill_caches();
        s.run_instructions(30_000);
        s.drain();
        // Any BOQ-site fault must be classified masked or recovered; the
        // system must end architecturally clean either way.
        assert!(s.leader_matches_golden());
    }

    #[test]
    fn slack_is_maintained_near_queue_capacity_fraction() {
        let mut s = system(Benchmark::Mesa);
        s.prefill_caches();
        s.run_instructions(80_000);
        let slack = s.stats().mean_slack();
        assert!(
            slack > 5.0 && slack < 200.0,
            "slack should sit inside the RVQ, got {slack}"
        );
    }

    #[test]
    fn interrupt_service_waits_for_the_checker() {
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(5_000);
        let backlog = s.queues().occupancy().rvq + s.trailer().in_flight();
        let cycles = s.service_interrupt();
        // Everything verified: safe to take the interrupt.
        assert_eq!(s.queues().occupancy().rvq, 0);
        assert_eq!(s.trailer().in_flight(), 0);
        // The wait is bounded by the backlog at checker throughput.
        assert!(
            cycles as usize <= backlog + 64,
            "sync took {cycles} cycles for backlog {backlog}"
        );
        assert_eq!(s.stats().interrupts_serviced, 1);
        // Execution resumes normally afterwards.
        let before = s.leader().activity().committed;
        s.run_instructions(2_000);
        assert!(s.leader().activity().committed > before);
        assert_eq!(s.stats().detected, 0);
    }

    #[test]
    fn interrupt_latency_tracks_slack() {
        // With a near-empty RVQ the synchronization is nearly free.
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(5_000);
        s.drain();
        let cycles = s.service_interrupt();
        assert!(cycles < 16, "drained system syncs instantly, took {cycles}");
    }

    /// Steps until a directed fault lands, then returns the outcome.
    fn inject_when_possible(s: &mut RmtSystem, fault: crate::DrawnFault) -> DirectedOutcome {
        use crate::DirectedOutcome::*;
        for _ in 0..10_000 {
            match s.inject_directed(fault, EccConfig::paper()) {
                NoTarget => s.step(),
                outcome => return outcome,
            }
        }
        panic!("no target op ever appeared for {fault:?}");
    }

    #[test]
    fn directed_unprotected_faults_are_detected() {
        use crate::DrawnFault;
        for site in [FaultSite::LeaderResult, FaultSite::RvqOperand] {
            let mut s = system(Benchmark::Gzip);
            s.prefill_caches();
            s.run_instructions(3_000);
            let out = inject_when_possible(
                &mut s,
                DrawnFault {
                    site,
                    bit: 13,
                    reg: 0,
                },
            );
            assert_eq!(out, DirectedOutcome::Applied);
            s.run_instructions(2_000);
            s.drain();
            assert!(s.stats().detected > 0, "{site:?} must be detected");
            assert_eq!(s.stats().unrecoverable, 0);
            assert!(s.leader_matches_golden());
            assert!(s.trailer_matches_golden());
            assert_eq!(
                s.fault_fates(),
                &[(site, FaultFate::DetectedRecovered)],
                "{site:?}"
            );
        }
    }

    #[test]
    fn directed_ecc_sites_are_corrected() {
        use crate::DrawnFault;
        for site in [FaultSite::LvqValue, FaultSite::TrailerRegfile] {
            let mut s = system(Benchmark::Gzip);
            s.prefill_caches();
            s.run_instructions(3_000);
            let out = s.inject_directed(
                DrawnFault {
                    site,
                    bit: 5,
                    reg: 3,
                },
                EccConfig::paper(),
            );
            assert_eq!(out, DirectedOutcome::CorrectedByEcc, "{site:?}");
            s.drain();
            assert_eq!(s.stats().detected, 0);
            assert!(s.fault_fates().is_empty());
            assert!(s.trailer_matches_golden());
        }
    }

    #[test]
    fn directed_boq_fault_is_masked_and_harmless() {
        use crate::DrawnFault;
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(3_000);
        let out = inject_when_possible(
            &mut s,
            DrawnFault {
                site: FaultSite::BoqOutcome,
                bit: 0,
                reg: 0,
            },
        );
        assert_eq!(out, DirectedOutcome::Applied);
        s.run_instructions(2_000);
        s.drain();
        assert_eq!(s.stats().detected, 0, "BOQ hints are never compared");
        assert_eq!(
            s.fault_fates(),
            &[(FaultSite::BoqOutcome, FaultFate::Masked)]
        );
        assert!(s.leader_matches_golden());
        assert!(s.trailer_matches_golden());
    }

    #[test]
    fn directed_trailer_fault_without_ecc_corrupts_recovery_point() {
        use crate::DrawnFault;
        // The §3.5 concern: with trailer-regfile ECC disabled, a strike
        // there either surfaces as an unrecoverable recovery or as
        // latent trailer-state corruption.
        let mut s = system(Benchmark::Gzip);
        s.prefill_caches();
        s.run_instructions(3_000);
        let out = s.inject_directed(
            DrawnFault {
                site: FaultSite::TrailerRegfile,
                bit: 60,
                reg: 7,
            },
            EccConfig {
                lvq: true,
                trailer_regfile: false,
            },
        );
        assert_eq!(out, DirectedOutcome::Applied);
        s.run_instructions(5_000);
        s.drain();
        let violated = s.stats().unrecoverable > 0 || !s.trailer_matches_golden();
        let healed = s.trailer_matches_golden() && s.stats().unrecoverable == 0;
        assert!(
            violated || healed,
            "fault must either surface or be overwritten"
        );
    }

    #[test]
    fn frequency_histogram_is_a_distribution() {
        let mut s = system(Benchmark::Gap);
        s.prefill_caches();
        s.run_instructions(100_000);
        let h = s.frequency_histogram();
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
