//! The 19 SPEC CPU2000 benchmark stand-ins used throughout the paper's
//! evaluation (Figures 5 and 6 list them explicitly).
//!
//! Each profile's parameters are calibrated so the simulated leading core
//! (Table 1 configuration) reproduces the *relative* behaviour the paper
//! reports: IPCs spread over roughly 0.3–2.5 (Fig. 6), L2 miss rates that
//! average ~1.4 per 10K instructions at 6 MB and improve modestly at
//! 15 MB (§3.3), and memory-bound programs (mcf, art, swim) at the low
//! end. The calibration constants live in the single table below.

use crate::profile::{InstructionMix, MemoryProfile, WorkloadProfile};
use std::fmt;
use std::str::FromStr;

/// SPEC2k sub-suite of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint2000.
    Int,
    /// SPECfp2000.
    Fp,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Suite::Int => "SPECint2000",
            Suite::Fp => "SPECfp2000",
        })
    }
}

/// The 19 benchmark programs evaluated in the paper (Fig. 5/6 x-axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are benchmark names
pub enum Benchmark {
    Ammp,
    Applu,
    Apsi,
    Art,
    Bzip2,
    Eon,
    Equake,
    Fma3d,
    Galgel,
    Gap,
    Gzip,
    Lucas,
    Mcf,
    Mesa,
    Swim,
    Twolf,
    Vortex,
    Vpr,
    Wupwise,
}

/// One row of the calibration table.
struct Calib {
    bench: Benchmark,
    suite: Suite,
    /// Mean register-dependence distance (ILP knob).
    dep_mean: f64,
    /// Fraction of history-predictable branch sites.
    predictability: f64,
    /// Hot (near-cache) working set, KiB.
    hot_kb: u32,
    /// Warm working set, KiB; values above 6144 only fit the 15 MB NUCA.
    warm_kb: u32,
    /// Probability of a warm-region reference.
    p_warm: f64,
    /// Probability of a streaming (always-miss) reference.
    p_stream: f64,
    /// Mean sequential run length (lines).
    spatial_run: u32,
}

/// Calibration table. `p_hot` is implied (`1 - p_warm - p_stream`).
const CALIB: [Calib; 19] = [
    Calib {
        bench: Benchmark::Ammp,
        suite: Suite::Fp,
        dep_mean: 4.0,
        predictability: 0.86,
        hot_kb: 48,
        warm_kb: 2048,
        p_warm: 0.012,
        p_stream: 0.0002,
        spatial_run: 2,
    },
    Calib {
        bench: Benchmark::Applu,
        suite: Suite::Fp,
        dep_mean: 6.0,
        predictability: 0.92,
        hot_kb: 32,
        warm_kb: 8192,
        p_warm: 0.0020,
        p_stream: 0.0004,
        spatial_run: 8,
    },
    Calib {
        bench: Benchmark::Apsi,
        suite: Suite::Fp,
        dep_mean: 6.5,
        predictability: 0.90,
        hot_kb: 24,
        warm_kb: 1024,
        p_warm: 0.012,
        p_stream: 0.0002,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Art,
        suite: Suite::Fp,
        dep_mean: 3.0,
        predictability: 0.88,
        hot_kb: 256,
        warm_kb: 3584,
        p_warm: 0.040,
        p_stream: 0.0010,
        spatial_run: 2,
    },
    Calib {
        bench: Benchmark::Bzip2,
        suite: Suite::Int,
        dep_mean: 5.0,
        predictability: 0.78,
        hot_kb: 32,
        warm_kb: 2048,
        p_warm: 0.010,
        p_stream: 0.0003,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Eon,
        suite: Suite::Int,
        dep_mean: 9.0,
        predictability: 0.85,
        hot_kb: 16,
        warm_kb: 256,
        p_warm: 0.004,
        p_stream: 0.0001,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Equake,
        suite: Suite::Fp,
        dep_mean: 4.5,
        predictability: 0.90,
        hot_kb: 40,
        warm_kb: 4096,
        p_warm: 0.012,
        p_stream: 0.0006,
        spatial_run: 8,
    },
    Calib {
        bench: Benchmark::Fma3d,
        suite: Suite::Fp,
        dep_mean: 5.5,
        predictability: 0.90,
        hot_kb: 24,
        warm_kb: 1024,
        p_warm: 0.010,
        p_stream: 0.0003,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Galgel,
        suite: Suite::Fp,
        dep_mean: 8.0,
        predictability: 0.93,
        hot_kb: 24,
        warm_kb: 512,
        p_warm: 0.008,
        p_stream: 0.0001,
        spatial_run: 6,
    },
    Calib {
        bench: Benchmark::Gap,
        suite: Suite::Int,
        dep_mean: 4.5,
        predictability: 0.75,
        hot_kb: 32,
        warm_kb: 1024,
        p_warm: 0.010,
        p_stream: 0.0003,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Gzip,
        suite: Suite::Int,
        dep_mean: 6.5,
        predictability: 0.80,
        hot_kb: 24,
        warm_kb: 256,
        p_warm: 0.006,
        p_stream: 0.0001,
        spatial_run: 6,
    },
    Calib {
        bench: Benchmark::Lucas,
        suite: Suite::Fp,
        dep_mean: 5.0,
        predictability: 0.95,
        hot_kb: 32,
        warm_kb: 9216,
        p_warm: 0.0020,
        p_stream: 0.0004,
        spatial_run: 8,
    },
    Calib {
        bench: Benchmark::Mcf,
        suite: Suite::Int,
        dep_mean: 2.0,
        predictability: 0.60,
        hot_kb: 512,
        warm_kb: 4096,
        p_warm: 0.080,
        p_stream: 0.0018,
        spatial_run: 2,
    },
    Calib {
        bench: Benchmark::Mesa,
        suite: Suite::Fp,
        dep_mean: 9.0,
        predictability: 0.94,
        hot_kb: 16,
        warm_kb: 128,
        p_warm: 0.003,
        p_stream: 0.0001,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Swim,
        suite: Suite::Fp,
        dep_mean: 5.0,
        predictability: 0.95,
        hot_kb: 48,
        warm_kb: 12288,
        p_warm: 0.0025,
        p_stream: 0.0008,
        spatial_run: 12,
    },
    Calib {
        bench: Benchmark::Twolf,
        suite: Suite::Int,
        dep_mean: 3.5,
        predictability: 0.62,
        hot_kb: 48,
        warm_kb: 1024,
        p_warm: 0.012,
        p_stream: 0.0002,
        spatial_run: 2,
    },
    Calib {
        bench: Benchmark::Vortex,
        suite: Suite::Int,
        dep_mean: 6.0,
        predictability: 0.85,
        hot_kb: 32,
        warm_kb: 2048,
        p_warm: 0.008,
        p_stream: 0.0002,
        spatial_run: 4,
    },
    Calib {
        bench: Benchmark::Vpr,
        suite: Suite::Int,
        dep_mean: 4.0,
        predictability: 0.62,
        hot_kb: 32,
        warm_kb: 1024,
        p_warm: 0.012,
        p_stream: 0.0002,
        spatial_run: 2,
    },
    Calib {
        bench: Benchmark::Wupwise,
        suite: Suite::Fp,
        dep_mean: 7.0,
        predictability: 0.93,
        hot_kb: 16,
        warm_kb: 1024,
        p_warm: 0.008,
        p_stream: 0.0002,
        spatial_run: 6,
    },
];

impl Benchmark {
    /// All 19 benchmarks in the paper's (alphabetical) order.
    pub const ALL: [Benchmark; 19] = [
        Benchmark::Ammp,
        Benchmark::Applu,
        Benchmark::Apsi,
        Benchmark::Art,
        Benchmark::Bzip2,
        Benchmark::Eon,
        Benchmark::Equake,
        Benchmark::Fma3d,
        Benchmark::Galgel,
        Benchmark::Gap,
        Benchmark::Gzip,
        Benchmark::Lucas,
        Benchmark::Mcf,
        Benchmark::Mesa,
        Benchmark::Swim,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
        Benchmark::Wupwise,
    ];

    fn calib(self) -> &'static Calib {
        CALIB
            .iter()
            .find(|c| c.bench == self)
            .expect("calibration table covers every benchmark")
    }

    /// The benchmark's lowercase SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ammp => "ammp",
            Benchmark::Applu => "applu",
            Benchmark::Apsi => "apsi",
            Benchmark::Art => "art",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Eon => "eon",
            Benchmark::Equake => "equake",
            Benchmark::Fma3d => "fma3d",
            Benchmark::Galgel => "galgel",
            Benchmark::Gap => "gap",
            Benchmark::Gzip => "gzip",
            Benchmark::Lucas => "lucas",
            Benchmark::Mcf => "mcf",
            Benchmark::Mesa => "mesa",
            Benchmark::Swim => "swim",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
            Benchmark::Wupwise => "wupwise",
        }
    }

    /// Which SPEC2k sub-suite the program belongs to.
    pub fn suite(self) -> Suite {
        self.calib().suite
    }

    /// Builds the calibrated [`WorkloadProfile`] for this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        let c = self.calib();
        let mix = match c.suite {
            Suite::Int => InstructionMix::typical_int(),
            Suite::Fp => InstructionMix::typical_fp(),
        };
        let p_hot = 1.0 - c.p_warm - c.p_stream;
        let memory = MemoryProfile::new(c.hot_kb, c.warm_kb, p_hot, c.p_warm, c.spatial_run)
            .expect("calibration table rows are valid");
        WorkloadProfile {
            name: self.name(),
            // Seed derived from the name so traces are stable across
            // reorderings of the table.
            seed: self.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }),
            mix,
            dep_mean: c.dep_mean,
            static_branches: 256,
            predictability: c.predictability,
            memory,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown SPEC2k benchmark `{}`", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Benchmark, ParseBenchmarkError> {
        let t = s.trim().to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == t)
            .ok_or_else(|| ParseBenchmarkError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 19);
        // Paper evaluates programs from both sub-suites.
        assert!(Benchmark::ALL.iter().any(|b| b.suite() == Suite::Int));
        assert!(Benchmark::ALL.iter().any(|b| b.suite() == Suite::Fp));
    }

    #[test]
    fn profiles_all_validate() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.validate().is_ok(), "{b} profile invalid");
            assert_eq!(p.name, b.name());
        }
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.profile().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 19, "every benchmark needs a distinct seed");
    }

    #[test]
    fn memory_bound_programs_stream_more() {
        let mcf = Benchmark::Mcf.profile();
        let eon = Benchmark::Eon.profile();
        assert!(mcf.memory.p_stream() > eon.memory.p_stream());
        assert!(mcf.dep_mean < eon.dep_mean, "mcf chases pointers");
    }

    #[test]
    fn some_working_sets_only_fit_the_15mb_cache() {
        // These drive the paper's 1.43 -> 1.25 misses/10K improvement.
        let over_6mb: Vec<_> = Benchmark::ALL
            .iter()
            .filter(|b| b.profile().memory.warm_kb > 6 * 1024)
            .collect();
        assert!(!over_6mb.is_empty());
        // But most programs fit in 6 MB (the paper: "a 15 MB L2 does not
        // offer much better hit rates than a 6 MB cache").
        assert!(over_6mb.len() <= 5);
    }

    #[test]
    fn round_trip_names() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("quake3".parse::<Benchmark>().is_err());
    }

    #[test]
    fn suites_match_spec_reality() {
        assert_eq!(Benchmark::Mcf.suite(), Suite::Int);
        assert_eq!(Benchmark::Swim.suite(), Suite::Fp);
        assert_eq!(Benchmark::Eon.suite(), Suite::Int);
    }
}
