//! Statistical validation of the trace generator: measured distributions
//! must match the profile parameters they were drawn from.

use rmt3d_workload::{Benchmark, MemoryRegions, OpClass, TraceGenerator};

const N: usize = 400_000;

#[test]
fn dependence_distances_track_the_profile_mean() {
    for b in [Benchmark::Mcf, Benchmark::Gzip, Benchmark::Mesa] {
        let profile = b.profile();
        let want = profile.dep_mean;
        let ops = TraceGenerator::new(profile).take_ops(N);
        let dists: Vec<f64> = ops
            .iter()
            .filter_map(|o| o.src1_dist.map(|d| d.get() as f64))
            .collect();
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        // The sampler clamps to the 64-entry producer window and falls
        // back to nearer producers during warm-up, so allow 25%.
        assert!(
            (mean - want).abs() / want < 0.25,
            "{b}: measured mean distance {mean} vs profile {want}"
        );
    }
}

#[test]
fn memory_references_respect_region_probabilities() {
    let profile = Benchmark::Mcf.profile();
    let m = profile.memory;
    let regions = MemoryRegions::of(&profile);
    let ops = TraceGenerator::new(profile).take_ops(N);
    let mut hot = 0u64;
    let mut warm = 0u64;
    let mut stream = 0u64;
    let mut total = 0u64;
    for op in &ops {
        if let Some(r) = op.mem() {
            total += 1;
            if r.addr >= regions.warm.0 + regions.warm.1 {
                stream += 1;
            } else if r.addr >= regions.warm.0 {
                warm += 1;
            } else {
                hot += 1;
            }
        }
    }
    let (fh, fw, fs) = (
        hot as f64 / total as f64,
        warm as f64 / total as f64,
        stream as f64 / total as f64,
    );
    // Spatial runs continue whichever region they started in, so the
    // proportions wander a little from the raw draw probabilities.
    assert!((fh - m.p_hot).abs() < 0.05, "hot {fh} vs {}", m.p_hot);
    assert!((fw - m.p_warm).abs() < 0.05, "warm {fw} vs {}", m.p_warm);
    assert!(
        (fs - m.p_stream()).abs() < 0.02,
        "stream {fs} vs {}",
        m.p_stream()
    );
}

#[test]
fn branch_outcomes_are_biased_toward_taken() {
    // Loop-shaped periodic branches are taken most of the time; strongly
    // biased sites average out near 50/50. Expect a taken-majority.
    for b in [Benchmark::Swim, Benchmark::Vpr] {
        let ops = TraceGenerator::new(b.profile()).take_ops(N);
        let (mut taken, mut branches) = (0u64, 0u64);
        for op in &ops {
            if let Some(br) = op.branch() {
                branches += 1;
                taken += br.taken as u64;
            }
        }
        let frac = taken as f64 / branches as f64;
        assert!(
            (0.55..0.95).contains(&frac),
            "{b}: taken fraction {frac} should look loop-like"
        );
    }
}

#[test]
fn working_set_footprint_matches_regions() {
    // The set of distinct lines touched must stay within the declared
    // hot+warm footprints (plus the unbounded stream).
    let profile = Benchmark::Twolf.profile();
    let regions = MemoryRegions::of(&profile);
    let ops = TraceGenerator::new(profile).take_ops(N);
    let mut hot_lines = std::collections::HashSet::new();
    for op in &ops {
        if let Some(r) = op.mem() {
            if r.addr < regions.hot.0 + regions.hot.1 && r.addr >= regions.hot.0 {
                hot_lines.insert(r.addr / 64);
            }
        }
    }
    let max_hot_lines = regions.hot.1 / 64;
    assert!(
        hot_lines.len() as u64 <= max_hot_lines,
        "hot footprint {} exceeds declared {} lines",
        hot_lines.len(),
        max_hot_lines
    );
    // And the region is actually used densely (not a corner of it).
    assert!(
        hot_lines.len() as u64 > max_hot_lines / 2,
        "hot region underused: {} of {}",
        hot_lines.len(),
        max_hot_lines
    );
}

#[test]
fn store_fraction_matches_mix() {
    let profile = Benchmark::Gap.profile();
    let want = profile.mix.store;
    let ops = TraceGenerator::new(profile).take_ops(N);
    let stores = ops.iter().filter(|o| o.kind == OpClass::Store).count();
    let frac = stores as f64 / ops.len() as f64;
    assert!(
        (frac - want).abs() < 0.01,
        "store fraction {frac} vs {want}"
    );
}
