//! Figure 6 — per-benchmark IPC for the four processor models, plus the
//! §3.3 cache-organization summary (L2 hit latency, misses per 10K,
//! 3d-2a vs 2d-2a improvement) and the distributed-ways comparison.

use crate::model::{ProcessorModel, RunScale};
use crate::simulate::{simulate, SimConfig};
use rmt3d_cache::NucaPolicy;
use rmt3d_workload::Benchmark;

/// One benchmark's IPC across the four models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// IPC on the 2d-a baseline.
    pub two_d_a: f64,
    /// IPC on 2d-2a.
    pub two_d_2a: f64,
    /// IPC on 3d-2a.
    pub three_d_2a: f64,
    /// IPC on 3d-checker (checker die, no extra cache).
    pub three_d_checker: f64,
}

/// The full Fig. 6 dataset plus §3.3 aggregates.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Per-benchmark IPCs.
    pub rows: Vec<Fig6Row>,
    /// Mean L2 hit latency observed on 2d-a (paper: 18 cycles).
    pub hit_cycles_2d_a: f64,
    /// Mean L2 hit latency observed on 2d-2a (paper: 22 cycles).
    pub hit_cycles_2d_2a: f64,
    /// Mean L2 hit latency observed on 3d-2a (paper: ~2d-a).
    pub hit_cycles_3d_2a: f64,
    /// Suite-mean L2 misses per 10K instructions at 6 MB (paper: 1.43).
    pub misses_per_10k_6mb: f64,
    /// Suite-mean L2 misses per 10K instructions at 15 MB (paper: 1.25).
    pub misses_per_10k_15mb: f64,
}

impl Fig6Result {
    /// Geometric-mean IPC of one column.
    pub fn gmean(&self, f: impl Fn(&Fig6Row) -> f64) -> f64 {
        let s: f64 = self.rows.iter().map(|r| f(r).ln()).sum();
        (s / self.rows.len() as f64).exp()
    }

    /// The §3.3 headline: 3d-2a performance improvement over 2d-2a
    /// (paper: 5.5%).
    pub fn improvement_3d_over_2d2a(&self) -> f64 {
        self.gmean(|r| r.three_d_2a) / self.gmean(|r| r.two_d_2a) - 1.0
    }

    /// Formats as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Fig.6 Performance evaluation (IPC, distributed-sets NUCA)\n\
             benchmark    2d-a  2d-2a  3d-2a  3d-checker\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:10} {:6.2} {:6.2} {:6.2} {:6.2}\n",
                r.benchmark.name(),
                r.two_d_a,
                r.two_d_2a,
                r.three_d_2a,
                r.three_d_checker
            ));
        }
        s.push_str(&format!(
            "L2 hit cycles: 2d-a {:.1}, 2d-2a {:.1}, 3d-2a {:.1}\n\
             L2 misses/10K: 6MB {:.2}, 15MB {:.2}\n\
             3d-2a vs 2d-2a: {:+.1}%\n",
            self.hit_cycles_2d_a,
            self.hit_cycles_2d_2a,
            self.hit_cycles_3d_2a,
            self.misses_per_10k_6mb,
            self.misses_per_10k_15mb,
            100.0 * self.improvement_3d_over_2d2a()
        ));
        s
    }
}

/// Runs Fig. 6 with the given NUCA policy (the paper's default is
/// distributed sets; §3.3 notes distributed ways is < 2% better).
pub fn run_with_policy(
    benchmarks: &[Benchmark],
    scale: RunScale,
    policy: NucaPolicy,
) -> Fig6Result {
    let mut rows = Vec::with_capacity(benchmarks.len());
    let mut hit_a = 0.0;
    let mut hit_b = 0.0;
    let mut hit_c = 0.0;
    let mut miss6 = 0.0;
    let mut miss15 = 0.0;
    for &b in benchmarks {
        let mut cfg = SimConfig::nominal(ProcessorModel::TwoDA, scale);
        cfg.policy = policy;
        let ra = simulate(&cfg, b);
        cfg.model = ProcessorModel::TwoD2A;
        let rb = simulate(&cfg, b);
        cfg.model = ProcessorModel::ThreeD2A;
        let rc = simulate(&cfg, b);
        cfg.model = ProcessorModel::ThreeDChecker;
        let rd = simulate(&cfg, b);
        hit_a += ra.l2.mean_hit_cycles();
        hit_b += rb.l2.mean_hit_cycles();
        hit_c += rc.l2.mean_hit_cycles();
        miss6 += ra.l2_misses_per_10k();
        miss15 += rc.l2_misses_per_10k();
        rows.push(Fig6Row {
            benchmark: b,
            two_d_a: ra.ipc(),
            two_d_2a: rb.ipc(),
            three_d_2a: rc.ipc(),
            three_d_checker: rd.ipc(),
        });
    }
    let n = benchmarks.len() as f64;
    Fig6Result {
        rows,
        hit_cycles_2d_a: hit_a / n,
        hit_cycles_2d_2a: hit_b / n,
        hit_cycles_3d_2a: hit_c / n,
        misses_per_10k_6mb: miss6 / n,
        misses_per_10k_15mb: miss15 / n,
    }
}

/// Runs Fig. 6 with the paper's default distributed-sets policy.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> Fig6Result {
    run_with_policy(benchmarks, scale, NucaPolicy::DistributedSets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_organization_effects() {
        let r = run(
            &[Benchmark::Gzip, Benchmark::Vpr, Benchmark::Swim],
            RunScale::quick(),
        );
        // Paper: 18 vs 22 cycle mean L2 hit latency; 3d-2a near 2d-a.
        assert!(
            (16.0..20.0).contains(&r.hit_cycles_2d_a),
            "{}",
            r.hit_cycles_2d_a
        );
        assert!(
            (20.0..24.5).contains(&r.hit_cycles_2d_2a),
            "{}",
            r.hit_cycles_2d_2a
        );
        assert!(r.hit_cycles_3d_2a < r.hit_cycles_2d_2a);
        // 3d-2a beats 2d-2a (paper: 5.5%).
        let imp = r.improvement_3d_over_2d2a();
        assert!((0.0..0.15).contains(&imp), "improvement {imp}");
    }

    #[test]
    fn checker_costs_nothing_and_cache_grows_help_little() {
        let r = run(&[Benchmark::Gzip], RunScale::quick());
        let row = &r.rows[0];
        // 3d-checker ~= 2d-a (same cache, free checker).
        assert!(
            (row.three_d_checker / row.two_d_a - 1.0).abs() < 0.05,
            "3d-checker {} vs 2d-a {}",
            row.three_d_checker,
            row.two_d_a
        );
        // For cache-friendly gzip the 15 MB cache does not transform
        // performance (paper: most differences are latency, not hits).
        assert!((row.three_d_2a / row.two_d_a - 1.0).abs() < 0.08);
    }

    #[test]
    fn distributed_ways_is_slightly_better() {
        // §3.3: < 2% better than distributed sets.
        let scale = RunScale::quick();
        let sets = run_with_policy(&[Benchmark::Gzip], scale, NucaPolicy::DistributedSets);
        let ways = run_with_policy(&[Benchmark::Gzip], scale, NucaPolicy::DistributedWays);
        let ratio = ways.gmean(|r| r.two_d_2a) / sets.gmean(|r| r.two_d_2a);
        assert!(
            (0.98..1.06).contains(&ratio),
            "ways vs sets on 2d-2a: {ratio}"
        );
    }

    #[test]
    fn table_output() {
        let r = run(&[Benchmark::Eon], RunScale::quick());
        assert!(r.to_table().contains("eon"));
    }
}
