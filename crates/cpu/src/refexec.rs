//! Architectural reference executor — the campaign's differential
//! oracle.
//!
//! Fault-injection campaigns must not check the out-of-order leader and
//! the in-order checker only against *each other*: a common-mode bug in
//! the pipeline models (or the golden-shadow bookkeeping) would go
//! unnoticed. [`ReferenceExecutor`] computes ground truth a third way —
//! a plain sequential interpreter over the same deterministic trace,
//! with no pipeline, no queues and no recovery machinery. After a run
//! drains, the leader register file, the trailer register file and the
//! reference register file must be identical; any disagreement is a
//! coverage violation.

use crate::ooo::load_memory_value;
use rmt3d_workload::{OpClass, TraceGenerator};

/// A sequential architectural interpreter over a [`TraceGenerator`]
/// stream.
///
/// The leader commits trace ops in sequence order (wrong-path work is
/// squashed, never committed), so replaying the first `n` ops of a
/// fresh generator with the same profile reproduces the architectural
/// state after `n` leader commits.
#[derive(Debug)]
pub struct ReferenceExecutor {
    trace: TraceGenerator,
    regfile: [u64; 64],
    executed: u64,
}

impl ReferenceExecutor {
    /// Creates an executor over a fresh trace. Pass a generator built
    /// with the same profile as the core under test.
    pub fn new(trace: TraceGenerator) -> ReferenceExecutor {
        ReferenceExecutor {
            trace,
            regfile: [0; 64],
            executed: 0,
        }
    }

    /// Executes the next op architecturally and returns its result
    /// value (0 for stores and branches).
    pub fn step(&mut self) -> u64 {
        let op = self.trace.next_op();
        let s1 = op.src1_reg.map_or(0, |r| self.regfile[r.index() as usize]);
        let s2 = op.src2_reg.map_or(0, |r| self.regfile[r.index() as usize]);
        let result = match op.kind {
            OpClass::Load => load_memory_value(op.mem_addr),
            OpClass::Store | OpClass::Branch => 0,
            _ => op.compute_result(s1, s2),
        };
        if let Some(d) = op.dest {
            self.regfile[d.index() as usize] = result;
        }
        self.executed += 1;
        result
    }

    /// Executes ops until `n` total have been executed (no-op if `n`
    /// ops already ran). Use with the core's committed count to bring
    /// the reference exactly level with a drained system.
    pub fn run_to(&mut self, n: u64) {
        while self.executed < n {
            self.step();
        }
    }

    /// Ops executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The reference architectural register file.
    pub fn regfile(&self) -> &[u64; 64] {
        &self.regfile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::ooo::OooCore;
    use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
    use rmt3d_workload::Benchmark;

    #[test]
    fn reference_matches_ooo_leader_exactly() {
        for b in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim] {
            let mut core = OooCore::new(
                CoreConfig::leading_ev7_like(),
                TraceGenerator::new(b.profile()),
                CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
            );
            core.run_instructions(20_000);
            let committed = core.activity().committed;
            let mut oracle = ReferenceExecutor::new(TraceGenerator::new(b.profile()));
            oracle.run_to(committed);
            assert_eq!(oracle.executed(), committed);
            assert_eq!(
                oracle.regfile(),
                core.regfile(),
                "{b:?}: reference and leader state diverged"
            );
        }
    }

    #[test]
    fn run_to_is_idempotent_and_monotonic() {
        let mut r = ReferenceExecutor::new(TraceGenerator::new(Benchmark::Gzip.profile()));
        r.run_to(100);
        let snap = *r.regfile();
        r.run_to(100);
        r.run_to(50);
        assert_eq!(r.executed(), 100);
        assert_eq!(r.regfile(), &snap);
        r.run_to(101);
        assert_eq!(r.executed(), 101);
    }
}
