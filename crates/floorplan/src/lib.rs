//! Die floorplans for the paper's processor models (Fig. 3).
//!
//! Three base layouts, all derived from Table 2 areas (leading core
//! 19.6 mm², in-order checker 5 mm², 1 MB L2 bank ~5.2 mm² including its
//! router):
//!
//! * **2d-a** (Fig. 3a): single die — leading core + 6 L2 banks. Also
//!   the bottom die of every 3D stack.
//! * **3d-2a upper die** (Fig. 3b): checker core + inter-core buffers +
//!   9 L2 banks, stacked face-to-face above the 2d-a die.
//! * **2d-2a** (Fig. 3c): one large die with everything — leading core,
//!   checker, 15 banks — for the iso-transistor 2D comparison.
//!
//! Variants reproduce the §3.2 thermal experiments: checker moved to the
//! die corner, an upper die with *only* the checker (inactive silicon),
//! and a double-density checker.
//!
//! The EV7-derived leading-core floorplan is subdivided into the 13
//! power blocks of `rmt3d_power::CoreBlock`; bank tiles are stretched a
//! few percent where needed to tessellate the die (power per bank is
//! fixed by Table 2, so tile density varies by the same few percent).

//! # Examples
//!
//! ```
//! use rmt3d_floorplan::{BlockId, ChipFloorplan};
//!
//! let plan = ChipFloorplan::three_d_2a();
//! plan.validate()?;
//! assert_eq!(plan.total_banks(), 15);
//! let (die, checker) = plan.find(BlockId::Checker).expect("3D chips have a checker");
//! assert_eq!(die, 1, "the checker sits on the stacked die");
//! assert!(checker.rect.area().0 > 4.9);
//! # Ok::<(), String>(())
//! ```

mod geometry;
mod plans;

pub use geometry::{PlacedBlock, Rect};
pub use plans::{BlockId, ChipFloorplan, Die};
