//! Serial-vs-parallel wall time for the `rmt3d-sweep` engine on the
//! (model × benchmark) grid, plus cache-hit replay cost.
//!
//! Run with `cargo bench -p rmt3d-bench --bench sweep`. Set
//! `RMT3D_PAPER=1` for the full 19-benchmark suite and
//! `RMT3D_BENCH_JSON=path` for machine-readable records.

use rmt3d::{ProcessorModel, RunScale};
use rmt3d_bench::bench;
use rmt3d_sweep::{run_sweep, CacheMode, SweepOptions, SweepSpec};
use rmt3d_telemetry::NullSink;
use rmt3d_workload::Benchmark;
use std::hint::black_box;

fn suite() -> SweepSpec {
    if std::env::var("RMT3D_PAPER").is_ok() {
        SweepSpec::paper_suite(RunScale::paper())
    } else {
        SweepSpec::new(
            &ProcessorModel::ALL,
            &[Benchmark::Gzip, Benchmark::Swim, Benchmark::Vpr],
            RunScale {
                warmup_instructions: 10_000,
                instructions: 60_000,
                thermal_grid: 25,
            },
        )
    }
}

fn main() {
    let spec = suite();
    let jobs = spec.expand();
    let workers = SweepOptions::default().worker_count();
    println!("sweep: {} jobs, {} workers available", jobs.len(), workers);

    let serial = bench("sweep_serial", 3, || {
        black_box(run_sweep(jobs.clone(), &SweepOptions::serial(), &mut NullSink).unwrap())
    });
    let parallel = bench("sweep_parallel_auto", 3, || {
        black_box(run_sweep(jobs.clone(), &SweepOptions::default(), &mut NullSink).unwrap())
    });
    println!(
        "parallel speedup: {:.2}x on {} workers",
        serial / parallel,
        workers
    );

    // Cached replay: first run populates, timed runs are 100% hits.
    let dir = std::env::temp_dir().join(format!("rmt3d-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        jobs: 0,
        cache: CacheMode::Dir(dir.clone()),
        ..SweepOptions::default()
    };
    run_sweep(jobs.clone(), &opts, &mut NullSink).unwrap();
    bench("sweep_cache_replay", 3, || {
        let report = run_sweep(jobs.clone(), &opts, &mut NullSink).unwrap();
        assert_eq!(report.executed, 0, "replay must be all cache hits");
        black_box(report)
    });
    let _ = std::fs::remove_dir_all(&dir);
}
