//! Concrete floorplans for the paper's processor models.

use crate::geometry::{PlacedBlock, Rect};
use rmt3d_power::CoreBlock;
use rmt3d_units::SquareMillimeters;
use std::fmt;

/// Identity of a floorplan block — the key power maps are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockId {
    /// A sub-block of the out-of-order leading core.
    Leader(CoreBlock),
    /// The in-order checker core.
    Checker,
    /// The RVQ/LVQ/BOQ/StB buffers (placed next to the inter-die via
    /// pillars, §3.2).
    IntercoreBuffers,
    /// The L2 controller (and centralized tags under distributed-ways).
    L2Controller,
    /// One 1 MB L2 bank (router power folded in).
    L2Bank {
        /// Die the bank sits on (0 = next to the heat sink).
        die: u8,
        /// Bank index within the die.
        index: u8,
    },
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockId::Leader(b) => write!(f, "leader/{b}"),
            BlockId::Checker => write!(f, "checker"),
            BlockId::IntercoreBuffers => write!(f, "intercore-buffers"),
            BlockId::L2Controller => write!(f, "l2-controller"),
            BlockId::L2Bank { die, index } => write!(f, "l2-bank[{die}.{index}]"),
        }
    }
}

/// One die of a (possibly stacked) chip.
#[derive(Debug, Clone, PartialEq)]
pub struct Die {
    /// Die name (e.g. `"2d-a"`).
    pub name: &'static str,
    /// Die width in mm.
    pub width: f64,
    /// Die height in mm.
    pub height: f64,
    /// Placed blocks. Unoccupied area is filler silicon (conducts heat,
    /// draws no power).
    pub blocks: Vec<PlacedBlock<BlockId>>,
}

impl Die {
    /// Die outline.
    pub fn outline(&self) -> Rect {
        Rect::new(0.0, 0.0, self.width, self.height)
    }

    /// Total die area.
    pub fn area(&self) -> SquareMillimeters {
        SquareMillimeters(self.width * self.height)
    }

    /// Finds a block by id.
    pub fn block(&self, id: BlockId) -> Option<&PlacedBlock<BlockId>> {
        self.blocks.iter().find(|b| b.id == id)
    }

    /// Number of L2 banks on this die.
    pub fn bank_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.id, BlockId::L2Bank { .. }))
            .count()
    }

    /// Validates containment and pairwise non-overlap.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let outline = self.outline();
        for b in &self.blocks {
            if !b.rect.within(&outline) {
                return Err(format!("{} escapes the {} die outline", b.id, self.name));
            }
        }
        for (i, a) in self.blocks.iter().enumerate() {
            for b in &self.blocks[i + 1..] {
                if a.rect.overlaps(&b.rect) {
                    return Err(format!("{} overlaps {} on {}", a.id, b.id, self.name));
                }
            }
        }
        Ok(())
    }
}

/// A complete chip: one die (2D models) or a face-to-face stack of two
/// (3D models). Die 0 is always adjacent to the heat sink (Fig. 2b).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipFloorplan {
    /// Model name (`"2d-a"`, `"2d-2a"`, `"3d-2a"`, ...).
    pub name: &'static str,
    /// Dies, heat-sink side first.
    pub dies: Vec<Die>,
}

/// Small-die edge length (mm): fits the leading core + 6 banks
/// (~51 mm² of blocks in ~55.5 mm²).
const SMALL_DIE: f64 = 7.45;
/// Large-die edge length for the 2d-2a model: twice the silicon.
const LARGE_DIE: f64 = 10.45;

/// Builds the EV7-like leading core: 19.6 mm² (Table 2) at `(x0, y0)`,
/// subdivided into the 13 `CoreBlock` tiles in three rows.
fn leading_core_blocks(x0: f64, y0: f64) -> Vec<PlacedBlock<BlockId>> {
    use CoreBlock::*;
    let mut v = Vec::with_capacity(13);
    let mut row = |y: f64, h: f64, cells: &[(CoreBlock, f64)]| {
        let mut x = x0;
        for &(b, w) in cells {
            v.push(PlacedBlock {
                id: BlockId::Leader(b),
                rect: Rect::new(x, y0 + y, w, h),
            });
            x += w;
        }
    };
    // Bottom row: memory pipeline.
    row(0.0, 1.05, &[(Lsq, 2.0), (Dcache, 3.6)]);
    // Middle row: window + execute. The scheduler and integer ALUs are
    // small, dense, hot structures (EV7-like): ~1 mm² tiles.
    row(
        1.05,
        1.4,
        &[
            (IqInt, 0.75),
            (IqFp, 0.55),
            (RegfileInt, 0.7),
            (RegfileFp, 0.5),
            (ExecInt, 0.78),
            (ExecFp, 1.0),
            (Clock, 1.32),
        ],
    );
    // Top row: front end.
    row(
        2.45,
        1.05,
        &[(IcacheFetch, 1.9), (Bpred, 1.1), (Rename, 1.3), (Rob, 1.3)],
    );
    v
}

fn bank(die: u8, index: u8, x: f64, y: f64, w: f64, h: f64) -> PlacedBlock<BlockId> {
    PlacedBlock {
        id: BlockId::L2Bank { die, index },
        rect: Rect::new(x, y, w, h),
    }
}

/// The 2d-a die (Fig. 3a), also the bottom die of every 3D model.
fn die_2d_a() -> Die {
    let mut blocks = leading_core_blocks(0.0, 0.0);
    // One bank to the right of the core, rotated tall.
    blocks.push(bank(0, 0, 5.6, 0.0, 1.7, 3.07));
    blocks.push(PlacedBlock {
        id: BlockId::L2Controller,
        rect: Rect::new(5.6, 3.07, 1.7, 0.43),
    });
    // Row of three banks above the core.
    blocks.push(bank(0, 1, 0.0, 3.6, 2.4833, 2.145));
    blocks.push(bank(0, 2, 2.4833, 3.6, 2.4834, 2.145));
    blocks.push(bank(0, 3, 4.9667, 3.6, 2.4833, 2.145));
    // Two wide banks along the top edge.
    blocks.push(bank(0, 4, 0.0, 5.75, 3.65, 1.43));
    blocks.push(bank(0, 5, 3.65, 5.75, 3.65, 1.43));
    Die {
        name: "2d-a",
        width: SMALL_DIE,
        height: SMALL_DIE,
        blocks,
    }
}

/// Checker placement on the upper die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckerSpot {
    /// Strip near the inter-die via pillars, above the leader's cache
    /// row (the default §3.2 placement).
    NearBuffers,
    /// Top-right corner, as far from the leader's hot units as possible
    /// (§3.2: buys ~1.5 °C at higher communication cost).
    Corner,
    /// Same strip but half the area — the pessimistic double power
    /// density scenario (§3.2: "+19 degrees" case).
    DenseStrip,
}

/// The upper die of the 3D models (Fig. 3b).
fn die_3d_upper(banks: bool, spot: CheckerSpot) -> Die {
    let mut blocks = vec![PlacedBlock {
        id: BlockId::IntercoreBuffers,
        rect: Rect::new(0.0, 0.0, 0.8, 1.05),
    }];
    // The checker tile is its 5 mm^2 core plus local instruction
    // storage / checker-mode extensions (§2: "a full-fledged core with
    // some logic extensions"), ~6.1 mm^2 of heated silicon. Placed
    // directly above the leader's *cache* row (LSQ/D-cache, cool), per
    // the paper's §3.2 placement strategy; the banks sit above the
    // leader's hot execution row.
    match spot {
        CheckerSpot::NearBuffers => blocks.push(PlacedBlock {
            id: BlockId::Checker,
            rect: Rect::new(0.8, 0.0, 5.8, 1.05),
        }),
        CheckerSpot::DenseStrip => blocks.push(PlacedBlock {
            id: BlockId::Checker,
            rect: Rect::new(0.8, 0.0, 2.9, 1.05),
        }),
        CheckerSpot::Corner => blocks.push(PlacedBlock {
            id: BlockId::Checker,
            rect: Rect::new(4.9667, 5.31, 2.4833, 2.13),
        }),
    }
    if banks {
        // A 3x3 grid of banks fills the rest of the die.
        let col = [0.0, 2.4833, 4.9667];
        let row = [1.05, 3.18, 5.31];
        let mut index = 0;
        for (ri, &y) in row.iter().enumerate() {
            for (ci, &x) in col.iter().enumerate() {
                if spot == CheckerSpot::Corner && ri == 2 && ci == 2 {
                    // The corner tile is the checker; its displaced bank
                    // moves into the default checker strip.
                    blocks.push(bank(1, index, 0.8, 0.0, 5.8, 1.05));
                } else {
                    blocks.push(bank(1, index, x, y, 2.4833, 2.13));
                }
                index += 1;
            }
        }
    }
    Die {
        name: "3d-upper",
        width: SMALL_DIE,
        height: SMALL_DIE,
        blocks,
    }
}

/// The 2d-2a die (Fig. 3c): everything on one large die.
fn die_2d_2a() -> Die {
    let mut blocks = leading_core_blocks(0.0, 0.0);
    blocks.push(PlacedBlock {
        id: BlockId::Checker,
        rect: Rect::new(5.7, 0.0, 3.9, 1.28),
    });
    blocks.push(PlacedBlock {
        id: BlockId::IntercoreBuffers,
        rect: Rect::new(9.6, 0.0, 0.85, 1.28),
    });
    blocks.push(PlacedBlock {
        id: BlockId::L2Controller,
        rect: Rect::new(5.7, 3.48, 2.4, 0.12),
    });
    // Two banks right of the core.
    blocks.push(bank(0, 0, 5.7, 1.28, 2.37, 2.2));
    blocks.push(bank(0, 1, 8.07, 1.28, 2.37, 2.2));
    // 4x3 grid above.
    let mut index = 2;
    for r in 0..3 {
        for c in 0..4 {
            blocks.push(bank(
                0,
                index,
                c as f64 * 2.29,
                3.6 + r as f64 * 2.28,
                2.29,
                2.28,
            ));
            index += 1;
        }
    }
    // One tall bank on the right edge.
    blocks.push(bank(0, 14, 9.16, 3.6, 1.29, 4.05));
    Die {
        name: "2d-2a",
        width: LARGE_DIE,
        height: LARGE_DIE,
        blocks,
    }
}

impl ChipFloorplan {
    /// The unreliable single-die baseline (Fig. 3a).
    pub fn two_d_a() -> ChipFloorplan {
        ChipFloorplan {
            name: "2d-a",
            dies: vec![die_2d_a()],
        }
    }

    /// The iso-transistor single-die reliable chip (Fig. 3c).
    pub fn two_d_2a() -> ChipFloorplan {
        ChipFloorplan {
            name: "2d-2a",
            dies: vec![die_2d_2a()],
        }
    }

    /// The proposed 3D reliable chip: 2d-a die + stacked checker/cache
    /// die (Fig. 3b).
    pub fn three_d_2a() -> ChipFloorplan {
        ChipFloorplan {
            name: "3d-2a",
            dies: vec![die_2d_a(), die_3d_upper(true, CheckerSpot::NearBuffers)],
        }
    }

    /// 3D stack whose upper die holds only the checker — the rest is
    /// inactive silicon (§3.2 temperature experiment; §3.3's
    /// "3d-checker" performance model).
    pub fn three_d_checker_only() -> ChipFloorplan {
        ChipFloorplan {
            name: "3d-checker",
            dies: vec![die_2d_a(), die_3d_upper(false, CheckerSpot::NearBuffers)],
        }
    }

    /// 3d-2a with the checker in the top die's corner (§3.2: ~1.5 °C
    /// cooler, costlier communication).
    pub fn three_d_2a_corner_checker() -> ChipFloorplan {
        ChipFloorplan {
            name: "3d-2a-corner",
            dies: vec![die_2d_a(), die_3d_upper(true, CheckerSpot::Corner)],
        }
    }

    /// The §4 heterogeneous stack: the upper die is fabricated at 90 nm,
    /// so the checker grows by (90/65)² to ~11.7 mm², each 1 MB bank to
    /// ~9.9 mm², and only 4 banks fit beside the checker (the paper
    /// rounds this to "5 MB"; Table 2 areas give 4).
    pub fn three_d_2a_hetero_90nm() -> ChipFloorplan {
        let mut blocks = vec![
            PlacedBlock {
                id: BlockId::IntercoreBuffers,
                rect: Rect::new(0.0, 0.0, 0.8, 1.05),
            },
            // The grown checker cannot fit over the leader's cache row
            // alone; it moves to the top edge, above the baseline die's
            // (cool) L2 banks.
            PlacedBlock {
                id: BlockId::Checker,
                rect: Rect::new(0.0, 5.88, 7.45, 1.57),
            },
        ];
        // 2x2 grid of 90 nm banks between the buffers and the checker.
        let mut index = 0;
        for r in 0..2 {
            for c in 0..2 {
                blocks.push(bank(
                    1,
                    index,
                    c as f64 * 3.725,
                    1.05 + r as f64 * 2.41,
                    3.725,
                    2.41,
                ));
                index += 1;
            }
        }
        ChipFloorplan {
            name: "3d-2a-90nm",
            dies: vec![
                die_2d_a(),
                Die {
                    name: "3d-upper-90nm",
                    width: SMALL_DIE,
                    height: SMALL_DIE,
                    blocks,
                },
            ],
        }
    }

    /// 3d-2a with the checker at double power density (half area) —
    /// the pessimistic §3.2 scenario.
    pub fn three_d_2a_dense_checker() -> ChipFloorplan {
        ChipFloorplan {
            name: "3d-2a-dense",
            dies: vec![die_2d_a(), die_3d_upper(true, CheckerSpot::DenseStrip)],
        }
    }

    /// Total L2 banks across dies.
    pub fn total_banks(&self) -> usize {
        self.dies.iter().map(Die::bank_count).sum()
    }

    /// Finds a block anywhere on the chip; returns `(die index, block)`.
    pub fn find(&self, id: BlockId) -> Option<(usize, &PlacedBlock<BlockId>)> {
        self.dies
            .iter()
            .enumerate()
            .find_map(|(i, d)| d.block(id).map(|b| (i, b)))
    }

    /// Validates every die.
    ///
    /// # Errors
    ///
    /// Returns the first geometric violation found.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.dies {
            d.validate()?;
        }
        Ok(())
    }

    /// All chip variants (for exhaustive tests and sweeps).
    pub fn all() -> Vec<ChipFloorplan> {
        vec![
            ChipFloorplan::two_d_a(),
            ChipFloorplan::two_d_2a(),
            ChipFloorplan::three_d_2a(),
            ChipFloorplan::three_d_checker_only(),
            ChipFloorplan::three_d_2a_corner_checker(),
            ChipFloorplan::three_d_2a_dense_checker(),
            ChipFloorplan::three_d_2a_hetero_90nm(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_is_geometrically_valid() {
        for plan in ChipFloorplan::all() {
            plan.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", plan.name));
        }
    }

    #[test]
    fn bank_inventories_match_the_paper() {
        assert_eq!(ChipFloorplan::two_d_a().total_banks(), 6);
        assert_eq!(ChipFloorplan::two_d_2a().total_banks(), 15);
        assert_eq!(ChipFloorplan::three_d_2a().total_banks(), 15);
        assert_eq!(ChipFloorplan::three_d_checker_only().total_banks(), 6);
        // 3D splits 6 + 9.
        let p = ChipFloorplan::three_d_2a();
        assert_eq!(p.dies[0].bank_count(), 6);
        assert_eq!(p.dies[1].bank_count(), 9);
    }

    #[test]
    fn table2_areas() {
        let p = ChipFloorplan::three_d_2a();
        // Leading core sub-blocks sum to 19.6 mm^2.
        let core: f64 = p.dies[0]
            .blocks
            .iter()
            .filter(|b| matches!(b.id, BlockId::Leader(_)))
            .map(|b| b.rect.area().0)
            .sum();
        assert!((core - 19.6).abs() < 0.1, "leading core area {core}");
        // Checker tile: the 5 mm^2 core plus local storage (~6.1 mm^2).
        let (_, checker) = p.find(BlockId::Checker).unwrap();
        assert!((4.9..6.3).contains(&checker.rect.area().0));
        // Banks are ~5.2 mm^2 (5 + router), within tessellation slack.
        for die in &p.dies {
            for b in &die.blocks {
                if matches!(b.id, BlockId::L2Bank { .. }) {
                    let a = b.rect.area().0;
                    assert!((4.9..5.6).contains(&a), "bank area {a}");
                }
            }
        }
    }

    #[test]
    fn two_d_2a_has_twice_the_silicon() {
        let small = ChipFloorplan::two_d_a().dies[0].area().0;
        let large = ChipFloorplan::two_d_2a().dies[0].area().0;
        assert!(
            (large / small - 2.0).abs() < 0.05,
            "ratio {}",
            large / small
        );
    }

    #[test]
    fn stacked_dies_share_a_footprint() {
        let p = ChipFloorplan::three_d_2a();
        assert_eq!(p.dies.len(), 2);
        assert_eq!(
            (p.dies[0].width, p.dies[0].height),
            (p.dies[1].width, p.dies[1].height)
        );
    }

    #[test]
    fn corner_variant_moves_the_checker_away() {
        let default = ChipFloorplan::three_d_2a();
        let corner = ChipFloorplan::three_d_2a_corner_checker();
        let hot = default
            .find(BlockId::Leader(CoreBlock::ExecInt))
            .unwrap()
            .1
            .rect;
        let d0 = default
            .find(BlockId::Checker)
            .unwrap()
            .1
            .rect
            .manhattan_to(&hot);
        let d1 = corner
            .find(BlockId::Checker)
            .unwrap()
            .1
            .rect
            .manhattan_to(&hot);
        assert!(d1 > d0, "corner checker is farther from the hot exec unit");
        assert_eq!(corner.total_banks(), 15, "no bank is lost");
    }

    #[test]
    fn dense_variant_halves_checker_area() {
        let a = ChipFloorplan::three_d_2a()
            .find(BlockId::Checker)
            .unwrap()
            .1
            .rect
            .area()
            .0;
        let b = ChipFloorplan::three_d_2a_dense_checker()
            .find(BlockId::Checker)
            .unwrap()
            .1
            .rect
            .area()
            .0;
        assert!((b / a - 0.5).abs() < 0.01);
    }

    #[test]
    fn checker_only_upper_die_is_mostly_empty() {
        let p = ChipFloorplan::three_d_checker_only();
        let used: f64 = p.dies[1].blocks.iter().map(|b| b.rect.area().0).sum();
        assert!(used < 0.2 * p.dies[1].area().0);
    }

    #[test]
    fn display_names() {
        assert_eq!(BlockId::Checker.to_string(), "checker");
        assert_eq!(
            BlockId::L2Bank { die: 1, index: 3 }.to_string(),
            "l2-bank[1.3]"
        );
        assert_eq!(
            BlockId::Leader(CoreBlock::ExecInt).to_string(),
            "leader/exec-int"
        );
    }
}
