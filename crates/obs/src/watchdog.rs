//! Heartbeat watchdog: flags jobs that have gone silent for much longer
//! than their peers took to finish.
//!
//! The watchdog is a pure state machine over an externally-supplied
//! clock (`now_nanos`), so the pool coordinator can drive it from real
//! `Instant`s while tests drive it with synthetic timestamps. Jobs beat
//! when claimed ([`Watchdog::start`]) and may beat again mid-flight
//! ([`Watchdog::beat`]); [`Watchdog::scan`] compares each running job's
//! silence against a threshold derived from the *median* duration of
//! jobs that already finished — a stall is "this job is taking several
//! times longer than a typical job", not an absolute timeout, so the
//! same config works for microsecond unit jobs and minute-long sweeps.
//!
//! Flagging is advisory: a stalled job keeps running (it may be a
//! legitimately heavy config) and is reported at most once. The
//! threshold never drops below [`WatchdogConfig::floor_nanos`], which
//! keeps sub-millisecond medians from flagging everything on a noisy
//! scheduler, and nothing is flagged before
//! [`WatchdogConfig::min_samples`] jobs have finished — with no
//! baseline there is no "typical job" to compare against.

/// Tuning for the stall detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// A job is stalled when its silence exceeds `multiplier` times the
    /// median finished-job duration.
    pub multiplier: f64,
    /// Completed-job count required before anything can be flagged.
    pub min_samples: usize,
    /// Lower bound on the stall threshold, regardless of median.
    pub floor_nanos: u64,
    /// How often the monitor loop should call [`Watchdog::scan`]. The
    /// watchdog itself does not enforce this; it is the coordinator's
    /// poll interval.
    pub poll_nanos: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            multiplier: 4.0,
            min_samples: 3,
            floor_nanos: 250_000_000, // 250 ms
            poll_nanos: 200_000_000,  // 200 ms
        }
    }
}

/// One stall verdict from [`Watchdog::scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Item index of the silent job.
    pub index: usize,
    /// Nanoseconds since the job's last heartbeat.
    pub elapsed_nanos: u64,
    /// Median finished-job duration the threshold was derived from.
    pub median_nanos: u64,
}

/// Stall detector over heartbeats; see the module docs.
#[derive(Debug, Default)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Running jobs as `(index, last_beat_nanos)`.
    running: Vec<(usize, u64)>,
    /// Wall durations of finished jobs, unsorted.
    finished: Vec<u64>,
    /// Indices already reported, so each job is flagged at most once.
    flagged: Vec<usize>,
}

impl Watchdog {
    /// Creates a watchdog with the given tuning.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            ..Watchdog::default()
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Records that a job was claimed; its heartbeat starts now.
    pub fn start(&mut self, index: usize, now_nanos: u64) {
        self.running.push((index, now_nanos));
    }

    /// Refreshes a running job's heartbeat. Unknown indices are ignored.
    pub fn beat(&mut self, index: usize, now_nanos: u64) {
        if let Some(entry) = self.running.iter_mut().find(|(i, _)| *i == index) {
            entry.1 = now_nanos;
        }
    }

    /// Records that a job finished after `wall_nanos`, feeding the
    /// median baseline and clearing any pending stall state.
    pub fn finish(&mut self, index: usize, wall_nanos: u64) {
        self.running.retain(|(i, _)| *i != index);
        self.finished.push(wall_nanos);
    }

    /// Number of jobs currently believed to be running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Indices flagged as stalled so far, in flag order.
    pub fn flagged(&self) -> &[usize] {
        &self.flagged
    }

    /// Median (nearest-rank) of finished-job durations, or `None` when
    /// nothing has finished.
    pub fn median_nanos(&self) -> Option<u64> {
        if self.finished.is_empty() {
            return None;
        }
        let mut sorted = self.finished.clone();
        sorted.sort_unstable();
        Some(sorted[(sorted.len() - 1) / 2])
    }

    /// The silence threshold a running job must exceed to be flagged,
    /// or `None` while below [`WatchdogConfig::min_samples`].
    pub fn threshold_nanos(&self) -> Option<u64> {
        if self.finished.len() < self.cfg.min_samples {
            return None;
        }
        let median = self.median_nanos()?;
        let scaled = (self.cfg.multiplier * median as f64).round();
        let scaled = if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        };
        Some(scaled.max(self.cfg.floor_nanos))
    }

    /// Flags every running job whose silence exceeds the threshold.
    /// Each job is reported at most once across all scans.
    pub fn scan(&mut self, now_nanos: u64) -> Vec<Stall> {
        let Some(threshold) = self.threshold_nanos() else {
            return Vec::new();
        };
        let median = self.median_nanos().unwrap_or(0);
        let mut stalls = Vec::new();
        for &(index, last_beat) in &self.running {
            let elapsed = now_nanos.saturating_sub(last_beat);
            if elapsed > threshold && !self.flagged.contains(&index) {
                stalls.push(Stall {
                    index,
                    elapsed_nanos: elapsed,
                    median_nanos: median,
                });
            }
        }
        self.flagged.extend(stalls.iter().map(|s| s.index));
        stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(multiplier: f64, min_samples: usize, floor_nanos: u64) -> WatchdogConfig {
        WatchdogConfig {
            multiplier,
            min_samples,
            floor_nanos,
            poll_nanos: 1,
        }
    }

    #[test]
    fn flags_a_deliberately_stalled_job_once() {
        let mut w = Watchdog::new(cfg(4.0, 3, 0));
        w.start(0, 0); // the job that will hang
        for i in 1..=3 {
            w.start(i, 0);
            w.finish(i, 100);
        }
        assert_eq!(w.median_nanos(), Some(100));
        assert_eq!(w.threshold_nanos(), Some(400));
        // Below threshold: silent 350ns <= 400ns.
        assert!(w.scan(350).is_empty());
        // Past threshold: flagged exactly once, with diagnostics.
        let stalls = w.scan(450);
        assert_eq!(
            stalls,
            vec![Stall {
                index: 0,
                elapsed_nanos: 450,
                median_nanos: 100,
            }]
        );
        assert!(w.scan(10_000).is_empty(), "a job is flagged at most once");
        assert_eq!(w.flagged(), &[0]);
    }

    #[test]
    fn heartbeat_defers_the_verdict() {
        let mut w = Watchdog::new(cfg(4.0, 3, 0));
        w.start(0, 0);
        for i in 1..=3 {
            w.start(i, 0);
            w.finish(i, 100);
        }
        w.beat(0, 400);
        assert!(w.scan(700).is_empty(), "300ns of silence is under 400ns");
        assert_eq!(w.scan(900).len(), 1, "500ns of silence is over");
    }

    #[test]
    fn needs_min_samples_before_judging() {
        let mut w = Watchdog::new(cfg(4.0, 3, 0));
        w.start(0, 0);
        w.finish(1, 10);
        w.finish(2, 10);
        assert_eq!(w.threshold_nanos(), None);
        assert!(w.scan(u64::MAX).is_empty(), "no baseline, no verdict");
        w.finish(3, 10);
        assert_eq!(w.scan(u64::MAX).len(), 1);
    }

    #[test]
    fn floor_bounds_the_threshold_from_below() {
        let mut w = Watchdog::new(cfg(4.0, 1, 1_000));
        w.start(0, 0);
        w.finish(1, 10); // median 10 → scaled threshold 40, floored to 1000
        assert_eq!(w.threshold_nanos(), Some(1_000));
        assert!(w.scan(900).is_empty());
        assert_eq!(w.scan(1_100).len(), 1);
    }

    #[test]
    fn finishing_clears_running_state() {
        let mut w = Watchdog::new(cfg(1.0, 1, 0));
        w.start(0, 0);
        w.finish(5, 100);
        w.finish(0, 2_000); // slow but done before any scan saw it
        assert_eq!(w.running_count(), 0);
        assert!(w.scan(1_000_000).is_empty());
        // Its duration now shifts the median for later jobs.
        assert_eq!(w.median_nanos(), Some(100));
        w.finish(6, 3_000);
        assert_eq!(w.median_nanos(), Some(2_000));
    }

    #[test]
    fn median_is_nearest_rank() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        assert_eq!(w.median_nanos(), None);
        for v in [50, 10, 30] {
            w.finish(0, v);
        }
        assert_eq!(w.median_nanos(), Some(30));
        w.finish(0, 40);
        assert_eq!(w.median_nanos(), Some(30), "even count takes lower middle");
    }
}
