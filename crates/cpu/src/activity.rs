//! Per-unit activity counters consumed by the Wattch-lite power model.
//!
//! Wattch computes dynamic power as `activity x energy-per-access` per
//! structure, with aggressive (cc3) clock gating for idle units. The core
//! models maintain these counters; `rmt3d-power` turns them into watts.

/// Activity counts accumulated by a core over a simulation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions dispatched (rename + ROB write).
    pub dispatched: u64,
    /// Instructions issued (IQ wakeup/select + regfile read).
    pub issued: u64,
    /// Instructions committed (ROB read + regfile write).
    pub committed: u64,
    /// Integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Integer multiplier operations.
    pub int_mul_ops: u64,
    /// FP adder operations.
    pub fp_alu_ops: u64,
    /// FP multiplier operations.
    pub fp_mul_ops: u64,
    /// Branch predictor lookups/updates.
    pub bpred_accesses: u64,
    /// L1 I-cache accesses (one per fetched line).
    pub icache_accesses: u64,
    /// L1 D-cache accesses (loads at issue, stores at commit).
    pub dcache_accesses: u64,
    /// Load/store queue insertions + searches.
    pub lsq_accesses: u64,
    /// Architectural register-file reads.
    pub regfile_reads: u64,
    /// Architectural register-file writes.
    pub regfile_writes: u64,
    /// Result-bus / bypass transfers.
    pub bypass_transfers: u64,
    /// Cycles in which the commit stage was stalled by external
    /// back-pressure (RVQ/StB full) — the RMT performance-coupling
    /// mechanism.
    pub commit_stall_cycles: u64,
    /// Branch mispredictions observed at fetch.
    pub branch_mispredicts: u64,
}

impl ActivityCounters {
    /// Committed instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per 1000 committed instructions.
    pub fn mispredicts_per_kilo_instruction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Per-cycle activity factor of a unit given its access count
    /// (clamped to 1.0; feeds cc3 gating in the power model).
    pub fn activity_factor(&self, accesses: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (accesses as f64 / self.cycles as f64).min(1.0)
        }
    }

    /// Element-wise accumulation of another window's counters.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.cycles += other.cycles;
        self.fetched += other.fetched;
        self.dispatched += other.dispatched;
        self.issued += other.issued;
        self.committed += other.committed;
        self.int_alu_ops += other.int_alu_ops;
        self.int_mul_ops += other.int_mul_ops;
        self.fp_alu_ops += other.fp_alu_ops;
        self.fp_mul_ops += other.fp_mul_ops;
        self.bpred_accesses += other.bpred_accesses;
        self.icache_accesses += other.icache_accesses;
        self.dcache_accesses += other.dcache_accesses;
        self.lsq_accesses += other.lsq_accesses;
        self.regfile_reads += other.regfile_reads;
        self.regfile_writes += other.regfile_writes;
        self.bypass_transfers += other.bypass_transfers;
        self.commit_stall_cycles += other.commit_stall_cycles;
        self.branch_mispredicts += other.branch_mispredicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let a = ActivityCounters {
            cycles: 1000,
            committed: 1200,
            branch_mispredicts: 6,
            ..Default::default()
        };
        assert!((a.ipc() - 1.2).abs() < 1e-12);
        assert!((a.mispredicts_per_kilo_instruction() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let a = ActivityCounters::default();
        assert_eq!(a.ipc(), 0.0);
        assert_eq!(a.activity_factor(10), 0.0);
        assert_eq!(a.mispredicts_per_kilo_instruction(), 0.0);
    }

    #[test]
    fn activity_factor_clamps() {
        let a = ActivityCounters {
            cycles: 100,
            ..Default::default()
        };
        assert_eq!(a.activity_factor(250), 1.0);
        assert!((a.activity_factor(50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityCounters {
            cycles: 10,
            committed: 5,
            ..Default::default()
        };
        let b = ActivityCounters {
            cycles: 20,
            committed: 15,
            int_alu_ops: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.committed, 20);
        assert_eq!(a.int_alu_ops, 7);
    }
}
