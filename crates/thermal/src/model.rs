//! Layer stacks and thermal configuration (paper Table 3).

use rmt3d_floorplan::{BlockId, ChipFloorplan};
use rmt3d_units::{Celsius, Watts};
use std::collections::BTreeMap;

/// Thermal conductivity of one stack layer.
///
/// Table 3 lists thermal *resistivities* in (m·K)/W; conductivity is the
/// reciprocal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Layer name for diagnostics.
    pub name: &'static str,
    /// Thickness in micrometres.
    pub thickness_um: f64,
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Index of the die whose power is injected into this layer, if any.
    pub injects_die: Option<usize>,
}

/// Table 3 material constants.
pub mod table3 {
    /// Bulk silicon thickness of the die next to the heat sink (µm).
    pub const BULK_DIE1_UM: f64 = 750.0;
    /// Bulk silicon thickness of the stacked die (µm).
    pub const BULK_DIE2_UM: f64 = 20.0;
    /// Active-layer thickness (µm).
    pub const ACTIVE_UM: f64 = 1.0;
    /// Copper metal-stack thickness per die (µm).
    pub const METAL_UM: f64 = 12.0;
    /// Die-to-die via layer thickness (µm).
    pub const D2D_UM: f64 = 10.0;
    /// Silicon conductivity: 1 / 0.01 (m·K)/W.
    pub const K_SI: f64 = 100.0;
    /// Effective metal-stack conductivity: 1 / 0.0833 (m·K)/W.
    pub const K_METAL: f64 = 12.0;
    /// D2D via layer conductivity: 1 / 0.0166 (m·K)/W (accounts for air
    /// cavities and via density).
    pub const K_D2D: f64 = 60.24;
    /// Ambient temperature (°C).
    pub const AMBIENT_C: f64 = 47.0;
    /// HotSpot grid resolution.
    pub const GRID: usize = 50;
}

/// Solver and boundary-condition parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Grid resolution per layer (cells per side).
    pub grid: usize,
    /// Ambient temperature.
    pub ambient: Celsius,
    /// Effective heat-sink convection coefficient under the spreader,
    /// W/(m²·K). This is the single calibrated constant of the model
    /// (see `calib` docs): it folds the real sink's fin/spreading
    /// resistance into a per-area coefficient, so a larger die
    /// automatically gets a proportionally better sink — matching the
    /// paper's note that the 2d-2a chip has a larger heat sink.
    pub sink_h: f64,
    /// Copper spreader thickness under the bottom die (µm).
    pub spreader_um: f64,
    /// Effective spreader conductivity, W/(m·K). Set above bulk copper
    /// (400) to emulate the lateral relief of HotSpot's
    /// larger-than-die spreader and sink base, which a die-sized grid
    /// cannot represent geometrically.
    pub spreader_k: f64,
    /// SOR relaxation factor.
    pub sor_omega: f64,
    /// Convergence threshold (max |ΔT| per sweep, K).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl ThermalConfig {
    /// The calibrated paper configuration (50×50 grid, 47 °C ambient).
    ///
    /// `sink_h` is calibrated once so the 2d-a baseline's mean peak
    /// temperature lands in the paper's ~72 °C band (Fig. 5); every
    /// other number in this crate is Table 3 physics.
    pub fn paper() -> ThermalConfig {
        ThermalConfig {
            grid: table3::GRID,
            ambient: Celsius(table3::AMBIENT_C),
            sink_h: 250_000.0,
            spreader_um: 6000.0,
            spreader_k: 3000.0,
            sor_omega: 1.92,
            tolerance: 1e-4,
            max_iters: 40_000,
        }
    }

    /// A coarser/faster configuration for tests (25×25 grid).
    pub fn fast() -> ThermalConfig {
        ThermalConfig {
            grid: 25,
            tolerance: 5e-4,
            ..ThermalConfig::paper()
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns an error message for degenerate grids or non-physical
    /// parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid < 4 {
            return Err("grid must be at least 4x4".to_string());
        }
        if self.sink_h <= 0.0 || self.spreader_um <= 0.0 || self.spreader_k <= 0.0 {
            return Err("sink and spreader must be positive".to_string());
        }
        if !(1.0..2.0).contains(&self.sor_omega) {
            return Err("SOR omega must be in [1, 2)".to_string());
        }
        Ok(())
    }
}

impl Default for ThermalConfig {
    fn default() -> ThermalConfig {
        ThermalConfig::paper()
    }
}

/// Builds the layer stack for a chip (2D: 3 layers; 3D F2F stack:
/// 6 layers, Fig. 2b). Heat sink side first.
pub fn layer_stack(plan: &ChipFloorplan, cfg: &ThermalConfig) -> Vec<LayerSpec> {
    use table3::*;
    let mut layers = vec![
        LayerSpec {
            name: "spreader",
            thickness_um: cfg.spreader_um,
            conductivity: cfg.spreader_k,
            injects_die: None,
        },
        LayerSpec {
            name: "bulk-si-1",
            thickness_um: BULK_DIE1_UM,
            conductivity: K_SI,
            injects_die: None,
        },
        LayerSpec {
            name: "active+metal-1",
            thickness_um: ACTIVE_UM + METAL_UM,
            conductivity: K_METAL,
            injects_die: Some(0),
        },
    ];
    if plan.dies.len() > 1 {
        layers.push(LayerSpec {
            name: "d2d-vias",
            thickness_um: D2D_UM,
            conductivity: K_D2D,
            injects_die: None,
        });
        layers.push(LayerSpec {
            name: "metal+active-2",
            thickness_um: METAL_UM + ACTIVE_UM,
            conductivity: K_METAL,
            injects_die: Some(1),
        });
        layers.push(LayerSpec {
            name: "bulk-si-2",
            thickness_um: BULK_DIE2_UM,
            conductivity: K_SI,
            injects_die: None,
        });
    }
    layers
}

/// Per-block power assignment for a thermal solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerMap {
    // BTreeMap: deterministic iteration keeps floating-point summation
    // order (and therefore whole-pipeline results) bit-reproducible.
    powers: BTreeMap<BlockId, Watts>,
}

impl PowerMap {
    /// Empty map.
    pub fn new() -> PowerMap {
        PowerMap::default()
    }

    /// Sets (replacing) a block's power.
    pub fn set(&mut self, id: BlockId, power: Watts) -> &mut PowerMap {
        self.powers.insert(id, power);
        self
    }

    /// Adds power onto a block.
    pub fn add(&mut self, id: BlockId, power: Watts) -> &mut PowerMap {
        let e = self.powers.entry(id).or_insert(Watts::ZERO);
        *e += power;
        self
    }

    /// A block's power (zero if unset).
    pub fn get(&self, id: BlockId) -> Watts {
        self.powers.get(&id).copied().unwrap_or(Watts::ZERO)
    }

    /// Total power in the map.
    pub fn total(&self) -> Watts {
        self.powers.values().copied().sum()
    }

    /// Iterates `(block, power)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Watts)> + '_ {
        self.powers.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reciprocals() {
        assert!((1.0 / table3::K_SI - 0.01).abs() < 1e-9);
        assert!((1.0 / table3::K_METAL - 0.0833).abs() < 3e-4);
        assert!((1.0 / table3::K_D2D - 0.0166).abs() < 1e-5);
    }

    #[test]
    fn stack_depth_matches_die_count() {
        let cfg = ThermalConfig::paper();
        assert_eq!(layer_stack(&ChipFloorplan::two_d_a(), &cfg).len(), 3);
        assert_eq!(layer_stack(&ChipFloorplan::three_d_2a(), &cfg).len(), 6);
    }

    #[test]
    fn injection_layers_cover_all_dies() {
        let cfg = ThermalConfig::paper();
        let stack = layer_stack(&ChipFloorplan::three_d_2a(), &cfg);
        let dies: Vec<usize> = stack.iter().filter_map(|l| l.injects_die).collect();
        assert_eq!(dies, vec![0, 1]);
    }

    #[test]
    fn config_validation() {
        assert!(ThermalConfig::paper().validate().is_ok());
        assert!(ThermalConfig {
            grid: 2,
            ..ThermalConfig::paper()
        }
        .validate()
        .is_err());
        assert!(ThermalConfig {
            sor_omega: 2.5,
            ..ThermalConfig::paper()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn power_map_accumulates() {
        let mut m = PowerMap::new();
        m.set(BlockId::Checker, Watts(7.0));
        m.add(BlockId::Checker, Watts(1.0));
        assert_eq!(m.get(BlockId::Checker), Watts(8.0));
        assert_eq!(m.total(), Watts(8.0));
        assert_eq!(m.get(BlockId::IntercoreBuffers), Watts::ZERO);
    }
}
