//! Property tests: geometric invariants hold for every chip variant.

use proptest::prelude::*;
use rmt3d_floorplan::{BlockId, ChipFloorplan, Rect};

#[test]
fn all_variants_validate_and_cover_reasonable_area() {
    for plan in ChipFloorplan::all() {
        plan.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", plan.name));
        for die in &plan.dies {
            let used: f64 = die.blocks.iter().map(|b| b.rect.area().0).sum();
            let total = die.area().0;
            assert!(
                used <= total + 1e-6,
                "{}/{}: blocks {used} exceed die {total}",
                plan.name,
                die.name
            );
        }
    }
}

#[test]
fn bank_indices_are_dense_and_unique() {
    for plan in ChipFloorplan::all() {
        for (d, die) in plan.dies.iter().enumerate() {
            let mut idx: Vec<u8> = die
                .blocks
                .iter()
                .filter_map(|b| match b.id {
                    BlockId::L2Bank { die, index } => {
                        assert_eq!(die as usize, d, "{}: bank die tag", plan.name);
                        Some(index)
                    }
                    _ => None,
                })
                .collect();
            idx.sort_unstable();
            for (i, &v) in idx.iter().enumerate() {
                assert_eq!(v as usize, i, "{}: bank indices dense", plan.name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn overlap_is_symmetric_and_irreflexive(
        x1 in -5.0..5.0f64, y1 in -5.0..5.0f64, w1 in 0.1..5.0f64, h1 in 0.1..5.0f64,
        x2 in -5.0..5.0f64, y2 in -5.0..5.0f64, w2 in 0.1..5.0f64, h2 in 0.1..5.0f64,
    ) {
        let a = Rect::new(x1, y1, w1, h1);
        let b = Rect::new(x2, y2, w2, h2);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert!(a.overlaps(&a), "positive-area rects self-overlap");
        prop_assert!(a.within(&a));
    }

    #[test]
    fn containment_implies_overlap_or_zero_gap(
        x in 0.0..3.0f64, y in 0.0..3.0f64, w in 0.1..2.0f64, h in 0.1..2.0f64,
    ) {
        let outer = Rect::new(0.0, 0.0, 6.0, 6.0);
        let inner = Rect::new(x, y, w, h);
        prop_assert!(inner.within(&outer));
        prop_assert!(inner.overlaps(&outer));
        // Manhattan distance to self is zero.
        prop_assert!(inner.manhattan_to(&inner).0.abs() < 1e-12);
    }

    #[test]
    fn manhattan_is_a_metric(
        ax in 0.0..10.0f64, ay in 0.0..10.0f64,
        bx in 0.0..10.0f64, by in 0.0..10.0f64,
        cx in 0.0..10.0f64, cy in 0.0..10.0f64,
    ) {
        let a = Rect::new(ax, ay, 1.0, 1.0);
        let b = Rect::new(bx, by, 1.0, 1.0);
        let c = Rect::new(cx, cy, 1.0, 1.0);
        let ab = a.manhattan_to(&b).0;
        let ba = b.manhattan_to(&a).0;
        let ac = a.manhattan_to(&c).0;
        let cb = c.manhattan_to(&b).0;
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry");
        prop_assert!(ab <= ac + cb + 1e-12, "triangle inequality");
    }
}
