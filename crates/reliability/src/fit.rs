//! Chip-level soft-error-rate (FIT) synthesis.
//!
//! Combines the Fig. 8 per-bit SER scaling, the Fig. 9 MBU model and the
//! paper's §2 protection inventory into a relative failure-rate estimate
//! for each processor organization — quantifying the abstract's claim
//! that the heterogeneous 3D checker provides "higher error resilience".
//!
//! All rates are *relative* (normalized to one unprotected 180 nm bit);
//! the paper publishes no absolute FIT targets, only scaling curves.

use crate::ser::{mbu_probability_at, per_bit_ser};
use rmt3d_units::TechNode;

/// How a state structure is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No protection: any upset is a potential silent error.
    None,
    /// ECC: single-bit upsets corrected; multi-bit upsets escape with
    /// the Fig. 9 probability, further reduced by physical bit
    /// interleaving (spatially adjacent flips land in different ECC
    /// words).
    Ecc,
    /// Covered by the RMT checker: upsets are detected and recovered;
    /// only control-path escapes remain (see
    /// [`ChipInventory::control_escape_fraction`]).
    RmtChecked,
}

/// One architectural state structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Structure {
    /// Name for reports.
    pub name: &'static str,
    /// State bits.
    pub bits: u64,
    /// Protection scheme.
    pub protection: Protection,
    /// Technology node holding the structure.
    pub node: TechNode,
}

impl Structure {
    /// Relative contribution to the chip's silent/uncorrected error
    /// rate. `control_escape` is the fraction of RMT-checked upsets
    /// that evade value checking (control-path effects, §2).
    pub fn residual_rate(&self, control_escape: f64) -> f64 {
        /// Fraction of multi-bit upsets that defeat both the ECC word
        /// interleaving and double-error detection.
        const ECC_MBU_ESCAPE: f64 = 0.05;
        let raw = self.bits as f64 * per_bit_ser(self.node).total();
        match self.protection {
            Protection::None => raw,
            Protection::Ecc => raw * mbu_probability_at(self.node) * ECC_MBU_ESCAPE,
            Protection::RmtChecked => raw * control_escape,
        }
    }
}

/// A chip's state inventory for FIT synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipInventory {
    /// Organization name.
    pub name: &'static str,
    /// Structures.
    pub structures: Vec<Structure>,
    /// Fraction of checked-structure upsets that escape the register
    /// value comparison (control-path faults, §2). The paper gives no
    /// number; 2% is a conservative architectural-vulnerability-style
    /// estimate, and results are reported relative so the conclusions
    /// are insensitive to it.
    pub control_escape_fraction: f64,
}

/// State bits of the Table 1 core structures (64-bit datapath).
fn core_structures(node: TechNode, checked: bool) -> Vec<Structure> {
    let p = if checked {
        Protection::RmtChecked
    } else {
        Protection::None
    };
    vec![
        Structure {
            name: "regfiles",
            bits: 2 * 80 * 64,
            protection: p,
            node,
        },
        Structure {
            name: "rob+rename",
            bits: 80 * 160,
            protection: p,
            node,
        },
        Structure {
            name: "issue-queues",
            bits: 35 * 120,
            protection: p,
            node,
        },
        Structure {
            name: "lsq",
            bits: 40 * 140,
            protection: p,
            node,
        },
        Structure {
            name: "bpred",
            bits: 3 * 16384 * 2 + 16384 * 12,
            protection: p,
            node,
        },
        // L1 caches carry ECC/parity in all organizations (§2 requires
        // it for the D-cache; I-cache misses are refetched).
        Structure {
            name: "l1-caches",
            bits: 2 * 32 * 1024 * 8,
            protection: Protection::Ecc,
            node,
        },
    ]
}

/// L2 cache bits (ECC-protected in every organization).
fn l2_structure(megabytes: u64, node: TechNode) -> Structure {
    Structure {
        name: "l2-cache",
        bits: megabytes * 1024 * 1024 * 8,
        protection: Protection::Ecc,
        node,
    }
}

impl ChipInventory {
    /// The unprotected 2d-a baseline at 65 nm.
    pub fn two_d_a() -> ChipInventory {
        let mut structures = core_structures(TechNode::N65, false);
        structures.push(l2_structure(6, TechNode::N65));
        ChipInventory {
            name: "2d-a",
            structures,
            control_escape_fraction: 0.02,
        }
    }

    /// The 3d-2a reliable chip with a same-process (65 nm) checker: the
    /// leader's datapath state is RMT-checked; the checker's own
    /// register file is ECC-protected (§2).
    pub fn three_d_2a(checker_node: TechNode) -> ChipInventory {
        let mut structures = core_structures(TechNode::N65, true);
        structures.push(l2_structure(15, TechNode::N65));
        // Checker-side state: its register file is the recovery point.
        structures.push(Structure {
            name: "checker-regfile",
            bits: 64 * 64,
            protection: Protection::Ecc,
            node: checker_node,
        });
        // Checker pipeline state is cross-checked by the comparison.
        structures.push(Structure {
            name: "checker-pipeline",
            bits: 16 * 200,
            protection: Protection::RmtChecked,
            node: checker_node,
        });
        ChipInventory {
            name: match checker_node {
                TechNode::N90 => "3d-2a (90nm checker)",
                _ => "3d-2a (65nm checker)",
            },
            structures,
            control_escape_fraction: 0.02,
        }
    }

    /// Total raw (unmitigated) upset rate.
    pub fn raw_rate(&self) -> f64 {
        self.structures
            .iter()
            .map(|s| s.bits as f64 * per_bit_ser(s.node).total())
            .sum()
    }

    /// Residual silent/uncorrectable error rate after all mitigation.
    pub fn residual_rate(&self) -> f64 {
        self.structures
            .iter()
            .map(|s| s.residual_rate(self.control_escape_fraction))
            .sum()
    }

    /// Residual rate of the *core* structures only (excluding the L2,
    /// which is identically ECC-protected in every organization and
    /// scales with capacity, not with the reliability scheme).
    pub fn core_residual_rate(&self) -> f64 {
        self.structures
            .iter()
            .filter(|s| s.name != "l2-cache")
            .map(|s| s.residual_rate(self.control_escape_fraction))
            .sum()
    }

    /// Residual rate of one named structure.
    pub fn structure_residual(&self, name: &str) -> f64 {
        self.structures
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.residual_rate(self.control_escape_fraction))
            .sum()
    }

    /// Mitigation factor (raw / residual).
    pub fn improvement(&self) -> f64 {
        self.raw_rate() / self.residual_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmt_collapses_the_residual_rate() {
        let base = ChipInventory::two_d_a();
        let rmt = ChipInventory::three_d_2a(TechNode::N65);
        // The reliable chip has MORE raw state (bigger L2, extra core)...
        assert!(rmt.raw_rate() > base.raw_rate());
        // ...but a far lower residual rate in the structures the RMT
        // scheme actually covers (the L2 is ECC'd identically in both
        // organizations and simply scales with capacity).
        assert!(
            rmt.core_residual_rate() < base.core_residual_rate() / 10.0,
            "rmt core residual {} vs baseline {}",
            rmt.core_residual_rate(),
            base.core_residual_rate()
        );
        // Even including the 2.5x larger ECC'd L2, the reliable chip is
        // no worse than the baseline.
        assert!(rmt.residual_rate() < base.residual_rate() * 2.0);
    }

    #[test]
    fn older_checker_die_protects_the_recovery_point() {
        // §4's resilience argument: what threatens *recovery* is an
        // uncorrectable (multi-bit) upset in the checker's register
        // file. Fig. 9's higher critical charge makes MBUs ~5x rarer at
        // 90 nm, far outweighing the slightly higher 90 nm per-bit
        // single-bit rate (Fig. 8) — single-bit upsets are corrected by
        // ECC regardless.
        let at65 = ChipInventory::three_d_2a(TechNode::N65);
        let at90 = ChipInventory::three_d_2a(TechNode::N90);
        let r65 = at65.structure_residual("checker-regfile");
        let r90 = at90.structure_residual("checker-regfile");
        assert!(
            r90 < r65 / 3.0,
            "90nm recovery-point residual {r90} vs 65nm {r65}"
        );
    }

    #[test]
    fn ecc_residual_tracks_the_mbu_model() {
        let s = Structure {
            name: "x",
            bits: 1000,
            protection: Protection::Ecc,
            node: TechNode::N65,
        };
        let expected =
            1000.0 * per_bit_ser(TechNode::N65).total() * mbu_probability_at(TechNode::N65) * 0.05;
        assert!((s.residual_rate(0.02) - expected).abs() < 1e-9);
    }

    #[test]
    fn unprotected_structure_contributes_fully() {
        let s = Structure {
            name: "x",
            bits: 100,
            protection: Protection::None,
            node: TechNode::N90,
        };
        assert!((s.residual_rate(0.5) - 100.0 * per_bit_ser(TechNode::N90).total()).abs() < 1e-9);
    }

    #[test]
    fn improvement_is_meaningful() {
        let rmt = ChipInventory::three_d_2a(TechNode::N90);
        assert!(
            rmt.improvement() > 10.0,
            "improvement {}",
            rmt.improvement()
        );
    }
}
