//! Exporters: the JSONL streaming sink, the in-memory collector that
//! feeds the metrics registry, and the CSV writer for interval samples.

use crate::registry::MetricsRegistry;
use crate::sample::{IntervalSample, SampleRing};
use crate::sink::Sink;
use crate::Event;
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

/// Streams every event as one JSON line to an [`io::Write`]r.
///
/// Clonable: clones share the writer, so the sink can be handed to the
/// leader, the checker, and the system at once. In deterministic mode
/// wall-clock fields are written as 0 so two identical runs produce
/// byte-identical traces.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: Rc<RefCell<W>>,
    deterministic: bool,
    error: Rc<RefCell<Option<io::Error>>>,
}

// Manual impl: the derive would demand `W: Clone`, but clones share the
// writer through the `Rc` (so `Box<dyn Write>` works too).
impl<W: Write> Clone for JsonlSink<W> {
    fn clone(&self) -> Self {
        JsonlSink {
            out: Rc::clone(&self.out),
            deterministic: self.deterministic,
            error: Rc::clone(&self.error),
        }
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; wall clocks are reported as measured.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Rc::new(RefCell::new(out)),
            deterministic: false,
            error: Rc::new(RefCell::new(None)),
        }
    }

    /// Zeroes wall-clock fields for reproducible traces.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Appends the metrics-summary line (tagged `"event":"summary"`)
    /// and flushes. Call once, after the run.
    pub fn write_summary(&mut self, registry: &MetricsRegistry) {
        let line = registry.to_json_line();
        self.write_line(&line);
        let flushed = self.out.borrow_mut().flush();
        if let Err(e) = flushed {
            self.note_error(e);
        }
    }

    /// Flushes the underlying writer and surfaces the first I/O error
    /// hit while streaming, if any. Call once at the end of the run;
    /// errors during streaming are latched rather than panicking
    /// mid-simulation.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.borrow_mut().flush()?;
        match self.error.borrow_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn write_line(&mut self, line: &str) {
        let mut out = self.out.borrow_mut();
        if let Err(e) = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
        {
            drop(out);
            self.note_error(e);
        }
    }

    fn note_error(&mut self, e: io::Error) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Flush-on-drop: a CLI error path that returns before calling
        // `finish()` still leaves a complete, newline-terminated JSONL
        // file behind. Every record is written whole, so flushing is
        // all finalization requires; errors here have nowhere to go.
        if let Ok(mut out) = self.out.try_borrow_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = event.to_json_line(self.deterministic);
        self.write_line(&line);
    }
}

/// In-memory aggregation: interval samples into a bounded ring, scalar
/// series into a [`MetricsRegistry`], and a per-kind event tally.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    /// The retained interval samples (bounded; see [`SampleRing`]).
    pub ring: SampleRing,
    /// Scalar series summarized at end of run.
    pub registry: MetricsRegistry,
    faults: u64,
    faults_corrected: u64,
    recoveries: u64,
    unrecoverable: u64,
    dfs_transitions: u64,
    jobs_executed: u64,
    jobs_failed: u64,
    job_cache_hits: u64,
    jobs_stalled: u64,
}

impl Collector {
    fn observe(&mut self, event: &Event) {
        match event {
            Event::Counter { name, value, .. } => self.registry.record(name, *value),
            Event::DfsTransition {
                to_level, fraction, ..
            } => {
                self.dfs_transitions += 1;
                self.registry.record("dfs_level", f64::from(*to_level));
                self.registry.record("checker_fraction", *fraction);
            }
            Event::FaultInjected { corrected, .. } => {
                self.faults += 1;
                if *corrected {
                    self.faults_corrected += 1;
                }
            }
            Event::Recovery {
                penalty_cycles,
                unrecoverable,
                ..
            } => {
                self.recoveries += 1;
                if *unrecoverable {
                    self.unrecoverable += 1;
                }
                self.registry
                    .record("recovery_penalty_cycles", *penalty_cycles as f64);
            }
            Event::SolverIteration { residual, .. } => {
                self.registry.record("solver_residual", *residual);
            }
            Event::Interval(s) => {
                self.registry.record("interval_ipc", s.ipc);
                self.registry.record("rob_occupancy", f64::from(s.rob));
                self.registry.record("lsq_occupancy", f64::from(s.lsq));
                self.registry.record("rvq_occupancy", f64::from(s.rvq));
                self.registry.record("lvq_occupancy", f64::from(s.lvq));
                self.registry.record("boq_occupancy", f64::from(s.boq));
                self.registry.record("stb_occupancy", f64::from(s.stb));
                // Log2 histograms: slack (RVQ depth is the leader/checker
                // slack) and per-structure occupancy distributions.
                self.registry.record_hist("slack", u64::from(s.rvq));
                self.registry.record_hist("rob_occupancy", u64::from(s.rob));
                self.registry.record_hist("lsq_occupancy", u64::from(s.lsq));
                self.registry.record_hist("lvq_occupancy", u64::from(s.lvq));
                self.registry.record_hist("boq_occupancy", u64::from(s.boq));
                self.registry.record_hist("stb_occupancy", u64::from(s.stb));
                self.ring.push(*s);
            }
            Event::JobFinished { ok, wall_nanos, .. } => {
                self.jobs_executed += 1;
                if !*ok {
                    self.jobs_failed += 1;
                }
                self.registry.record("job_wall_nanos", *wall_nanos as f64);
                self.registry.record_hist("job_wall_nanos", *wall_nanos);
            }
            Event::JobCacheHit { .. } => {
                self.job_cache_hits += 1;
            }
            Event::JobStalled { elapsed_nanos, .. } => {
                self.jobs_stalled += 1;
                self.registry
                    .record("stall_elapsed_nanos", *elapsed_nanos as f64);
            }
            Event::PoolStats {
                workers,
                executed,
                cache_hits,
                failed,
                steals,
                busy_nanos,
                idle_nanos,
                wall_nanos,
            } => {
                self.registry.record("pool_workers", *workers as f64);
                self.registry.record("pool_executed", *executed as f64);
                self.registry.record("pool_cache_hits", *cache_hits as f64);
                self.registry.record("pool_failed", *failed as f64);
                self.registry.record("pool_steals", *steals as f64);
                self.registry.record("pool_busy_nanos", *busy_nanos as f64);
                self.registry.record("pool_idle_nanos", *idle_nanos as f64);
                self.registry.record("pool_wall_nanos", *wall_nanos as f64);
            }
            Event::CacheStats {
                hits,
                misses,
                verify_failures,
                entries,
                bytes,
            } => {
                self.registry.record("cache_hits", *hits as f64);
                self.registry.record("cache_misses", *misses as f64);
                self.registry
                    .record("cache_verify_failures", *verify_failures as f64);
                self.registry.record("cache_entries", *entries as f64);
                self.registry.record("cache_bytes", *bytes as f64);
            }
            Event::CampaignTrial { detect_cycles, .. } => {
                // Zero means the fault never reached the checker
                // (corrected or masked) — not a latency sample.
                if *detect_cycles > 0 {
                    self.registry
                        .record_hist("detection_latency", *detect_cycles);
                }
            }
            Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::JobStarted { .. }
            | Event::JobSpanBegin { .. }
            | Event::JobSpanEnd { .. } => {}
        }
    }

    /// Total faults injected (and how many ECC corrected).
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.faults, self.faults_corrected)
    }

    /// Total recoveries (and how many were unrecoverable).
    pub fn recovery_counts(&self) -> (u64, u64) {
        (self.recoveries, self.unrecoverable)
    }

    /// Number of DFS level changes observed.
    pub fn dfs_transitions(&self) -> u64 {
        self.dfs_transitions
    }

    /// Sweep-job tallies: `(executed, failed, cache_hits)`.
    pub fn job_counts(&self) -> (u64, u64, u64) {
        (self.jobs_executed, self.jobs_failed, self.job_cache_hits)
    }

    /// Number of watchdog stall flags observed.
    pub fn jobs_stalled(&self) -> u64 {
        self.jobs_stalled
    }
}

/// Clonable sink that feeds a shared [`Collector`].
#[derive(Debug, Clone, Default)]
pub struct CollectorSink {
    inner: Rc<RefCell<Collector>>,
}

impl CollectorSink {
    /// Creates a collector with an unbounded sample ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector retaining at most `capacity` interval
    /// samples (0 = unbounded).
    ///
    /// Eviction is strictly oldest-first: once the ring holds
    /// `capacity` samples, each new [`Event::Interval`] evicts the
    /// sample with the smallest index, so the ring always holds the
    /// most recent `capacity` samples in arrival order and
    /// [`SampleRing::dropped`] counts the evictions. Scalar series in
    /// the registry are unaffected — only retained raw samples are
    /// bounded.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        CollectorSink {
            inner: Rc::new(RefCell::new(Collector {
                ring: SampleRing::new(capacity),
                ..Collector::default()
            })),
        }
    }

    /// Runs `f` against the aggregated state.
    pub fn with<R>(&self, f: impl FnOnce(&Collector) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Clones out the aggregated state.
    pub fn snapshot(&self) -> Collector {
        self.inner.borrow().clone()
    }
}

impl Sink for CollectorSink {
    fn record(&mut self, event: &Event) {
        self.inner.borrow_mut().observe(event);
    }
}

/// Column order of [`write_samples_csv`], matching [`IntervalSample`]'s
/// fields.
pub const CSV_HEADER: &str = "index,cycle,committed,ipc,rob,iq_int,iq_fp,lsq,rvq,lvq,boq,stb,\
checker_fraction,dl1_accesses,dl1_misses,l2_accesses,l2_misses,commit_stall_cycles";

/// Quotes a CSV field when it contains a comma, quote, or newline
/// (quotes are doubled per RFC 4180); plain fields pass through.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Writes per-series summary statistics as CSV. Series names are
/// CSV-escaped, so names containing commas or quotes cannot shift
/// columns.
pub fn write_metrics_csv<W: Write>(out: &mut W, registry: &MetricsRegistry) -> io::Result<()> {
    writeln!(out, "series,count,min,mean,p50,p99,max")?;
    for (name, s) in registry.summaries() {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            csv_escape(name),
            s.count,
            s.min,
            s.mean,
            s.p50,
            s.p99,
            s.max,
        )?;
    }
    out.flush()
}

/// Writes interval samples as CSV (header + one row per sample).
pub fn write_samples_csv<'a, W: Write>(
    out: &mut W,
    samples: impl Iterator<Item = &'a IntervalSample>,
) -> io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for s in samples {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.index,
            s.cycle,
            s.committed,
            s.ipc,
            s.rob,
            s.iq_int,
            s.iq_fp,
            s.lsq,
            s.rvq,
            s.lvq,
            s.boq,
            s.stb,
            s.checker_fraction,
            s.dl1_accesses,
            s.dl1_misses,
            s.l2_accesses,
            s.l2_misses,
            s.commit_stall_cycles,
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ParsedEvent;
    use crate::registry::Log2Histogram;

    /// Shared byte buffer that outlives the sink, so tests can inspect
    /// output after the sink (and its drop guard) is gone.
    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.borrow().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn fault(cycle: u64, corrected: bool) -> Event {
        Event::FaultInjected {
            cycle,
            site: "lvq_value",
            bit: 1,
            corrected,
        }
    }

    #[test]
    fn jsonl_sink_streams_parseable_lines() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(buf.clone());
        sink.record(&fault(10, true));
        sink.record(&Event::SpanBegin {
            name: "measure",
            cycle: 10,
        });
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.25);
        sink.write_summary(&reg);
        sink.finish().unwrap();
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            ParsedEvent::from_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[2].contains("\"event\":\"summary\""));
    }

    #[test]
    fn jsonl_dropped_mid_run_is_parseable_and_newline_terminated() {
        let buf = SharedBuf::default();
        {
            let sink = JsonlSink::new(buf.clone());
            let mut clone = sink.clone();
            clone.record(&fault(10, true));
            clone.record(&Event::Recovery {
                cycle: 20,
                penalty_cycles: 200,
                unrecoverable: false,
            });
            // Dropped without finish(): simulates a CLI error path that
            // bails before end-of-run finalization.
        }
        let text = buf.text();
        assert!(text.ends_with('\n'), "trace must be newline-terminated");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            ParsedEvent::from_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn jsonl_clones_share_the_writer() {
        let sink = JsonlSink::new(Vec::new());
        let mut a = sink.clone();
        let mut b = sink.clone();
        a.record(&fault(1, false));
        b.record(&fault(2, false));
        let text = String::from_utf8(sink.out.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn collector_tallies_kinds() {
        let mut sink = CollectorSink::new();
        sink.record(&fault(1, true));
        sink.record(&fault(2, false));
        sink.record(&Event::Recovery {
            cycle: 3,
            penalty_cycles: 200,
            unrecoverable: false,
        });
        sink.record(&Event::DfsTransition {
            cycle: 4,
            from_level: 4,
            to_level: 5,
            fraction: 0.6,
        });
        sink.record(&Event::Interval(IntervalSample {
            index: 0,
            cycle: 100,
            ipc: 1.5,
            ..IntervalSample::default()
        }));
        assert_eq!(sink.with(|c| c.fault_counts()), (2, 1));
        assert_eq!(sink.with(|c| c.recovery_counts()), (1, 0));
        assert_eq!(sink.with(|c| c.dfs_transitions()), 1);
        assert_eq!(sink.with(|c| c.ring.len()), 1);
        let ipc = sink.with(|c| c.registry.summary("interval_ipc").unwrap());
        assert_eq!(ipc.mean, 1.5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let samples = [
            IntervalSample {
                index: 0,
                cycle: 100,
                committed: 80,
                ipc: 0.8,
                ..IntervalSample::default()
            },
            IntervalSample {
                index: 1,
                cycle: 200,
                committed: 90,
                ipc: 0.9,
                ..IntervalSample::default()
            },
        ];
        let mut buf = Vec::new();
        write_samples_csv(&mut buf, samples.iter()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,cycle,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same arity"
        );
        assert!(lines[1].starts_with("0,100,80,0.8"));
    }

    #[test]
    fn csv_header_is_pinned() {
        // The sample-CSV header is a published interface: downstream
        // notebooks key on these exact column names. Changing it is a
        // breaking change and must be deliberate.
        assert_eq!(
            CSV_HEADER,
            "index,cycle,committed,ipc,rob,iq_int,iq_fp,lsq,rvq,lvq,boq,stb,\
             checker_fraction,dl1_accesses,dl1_misses,l2_accesses,l2_misses,commit_stall_cycles"
        );
    }

    #[test]
    fn csv_escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("interval_ipc"), "interval_ipc");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn metrics_csv_escapes_series_names() {
        let mut reg = MetricsRegistry::new();
        reg.record("plain", 1.0);
        reg.record("weird,name \"x\"", 2.0);
        let mut buf = Vec::new();
        write_metrics_csv(&mut buf, &reg).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "series,count,min,mean,p50,p99,max");
        assert!(lines[1].starts_with("plain,1,"));
        assert!(lines[2].starts_with("\"weird,name \"\"x\"\"\",1,"));
        // Every row keeps the header's arity once quoted fields are
        // accounted for: the quoted name counts as one field.
        assert_eq!(lines[0].split(',').count(), 7);
    }

    #[test]
    fn ring_capacity_evicts_oldest_first() {
        let mut sink = CollectorSink::with_ring_capacity(2);
        for index in 0..3 {
            sink.record(&Event::Interval(IntervalSample {
                index,
                cycle: (index + 1) * 100,
                ..IntervalSample::default()
            }));
        }
        sink.with(|c| {
            assert_eq!(c.ring.len(), 2);
            assert_eq!(c.ring.dropped(), 1);
            let kept: Vec<u64> = c.ring.iter().map(|s| s.index).collect();
            assert_eq!(kept, vec![1, 2], "sample 0 (oldest) is evicted first");
        });
        // The registry still saw every sample — only raw retention is
        // bounded.
        assert_eq!(
            sink.with(|c| c.registry.summary("interval_ipc").unwrap().count),
            3
        );
    }

    #[test]
    fn collector_feeds_histograms() {
        let mut sink = CollectorSink::new();
        sink.record(&Event::Interval(IntervalSample {
            rvq: 12,
            rob: 100,
            ..IntervalSample::default()
        }));
        sink.record(&Event::CampaignTrial {
            trial: 0,
            site: "rvq_operand",
            fate: "detected_recovered",
            detect_cycles: 37,
            ok: true,
        });
        sink.record(&Event::CampaignTrial {
            trial: 1,
            site: "lvq_value",
            fate: "corrected_by_ecc",
            detect_cycles: 0,
            ok: true,
        });
        sink.with(|c| {
            let slack = c.registry.histogram("slack").unwrap();
            assert_eq!(slack.samples(), 1);
            assert_eq!(slack.count(Log2Histogram::bucket_of(12)), 1);
            let lat = c.registry.histogram("detection_latency").unwrap();
            assert_eq!(lat.samples(), 1, "zero-latency trials are not samples");
            assert_eq!(lat.count(Log2Histogram::bucket_of(37)), 1);
        });
    }
}
