//! Line-granular set-associative cache with true-LRU replacement.

use crate::config::CacheConfig;

/// Hit/miss counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses caused by writes.
    pub write_misses: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement and write-allocate
/// policy, tracking tags only (the simulator carries values elsewhere).
///
/// # Examples
///
/// ```
/// use rmt3d_cache::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1024, 2, 64, 1).unwrap());
/// assert!(!c.access(0, false));
/// assert!(c.access(0, false));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Tag storage: `sets x ways`, most-recently-used first within each
    /// set. `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    stats: CacheStats,
}

/// Sentinel for an empty way.
const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let entries = (config.sets() as usize) * config.ways as usize;
        SetAssocCache {
            config,
            tags: vec![INVALID; entries],
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept — useful after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line
    /// (write-allocate for stores).
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.config.index_tag(addr);
        let ways = self.config.ways as usize;
        let base = set as usize * ways;
        let slot = &mut self.tags[base..base + ways];
        self.stats.accesses += 1;

        if let Some(pos) = slot.iter().position(|&t| t == tag) {
            // Move to MRU position.
            slot[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Evict LRU (last), insert at MRU.
            slot.rotate_right(1);
            slot[0] = tag;
            self.stats.misses += 1;
            if write {
                self.stats.write_misses += 1;
            }
            false
        }
    }

    /// Probes without updating LRU or statistics; returns `true` when the
    /// line is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.config.index_tag(addr);
        let ways = self.config.ways as usize;
        let base = set as usize * ways;
        self.tags[base..base + ways].contains(&tag)
    }

    /// Invalidates a line if present; returns whether it was resident.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.config.index_tag(addr);
        let ways = self.config.ways as usize;
        let base = set as usize * ways;
        let slot = &mut self.tags[base..base + ways];
        if let Some(pos) = slot.iter().position(|&t| t == tag) {
            // Shift the invalidated entry to LRU and clear it.
            slot[pos..].rotate_left(1);
            slot[ways - 1] = INVALID;
            true
        } else {
            false
        }
    }

    /// Fraction of ways currently valid (occupancy).
    pub fn occupancy(&self) -> f64 {
        let valid = self.tags.iter().filter(|&&t| t != INVALID).count();
        valid as f64 / self.tags.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        SetAssocCache::new(CacheConfig::new(512, 2, 64, 1).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false), "same line");
        assert!(!c.access(64, false), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0 in a 2-way cache: stride = sets*line = 256.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // touch 0: now 256 is LRU
        c.access(512, false); // evicts 256
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn write_miss_counted_and_allocated() {
        let mut c = small();
        assert!(!c.access(128, true));
        assert_eq!(c.stats().write_misses, 1);
        assert!(c.access(128, false), "write-allocate");
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0, false);
        c.access(256, false);
        // Probing 256 must not refresh its LRU position.
        assert!(c.probe(256));
        c.access(0, false);
        c.access(512, false); // should evict 256 (LRU), not 0
        assert!(c.probe(0));
        assert!(!c.probe(256));
        let s = c.stats();
        assert_eq!(s.accesses, 4, "probes are not accesses");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0, false);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0), "second invalidate is a no-op");
        // The freed way is reused before evicting the other way.
        c.access(256, false);
        c.access(512, false);
        assert!(c.probe(256) && c.probe(512));
    }

    #[test]
    fn occupancy_grows_to_full() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0.0);
        for i in 0..8 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupancy(), 1.0);
    }

    #[test]
    fn uniform_working_set_miss_rates() {
        // A working set twice the cache size gives ~50% hit rate under
        // uniform random access; within the cache size it gives ~100%.
        let mut c = SetAssocCache::new(CacheConfig::new(32 * 1024, 2, 64, 1).unwrap());
        let mut x = 12345u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200_000 {
            let addr = (rng() % (16 * 1024 / 64)) * 64;
            c.access(addr, false);
        }
        assert!(c.stats().miss_rate() < 0.01, "16K set in 32K cache");
        c.reset_stats();
        for _ in 0..200_000 {
            let addr = (rng() % (64 * 1024 / 64)) * 64;
            c.access(addr, false);
        }
        let mr = c.stats().miss_rate();
        assert!(mr > 0.3 && mr < 0.7, "64K set in 32K cache: {mr}");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0, false), "contents survive reset");
    }
}
