//! Diagnostic: per-block power densities and block peak temperatures
//! for one (model, benchmark, checker-power) configuration.
//!
//! ```sh
//! cargo run --release -p rmt3d --example hotspot_dbg -- [model] [benchmark] [checker_watts]
//! ```

use rmt3d::power::CheckerPowerModel;
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{
    build_power_map, override_checker_power, simulate, PowerMapConfig, ProcessorModel, RunScale,
    SimConfig,
};
use rmt3d_units::Watts;
use rmt3d_workload::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = args
        .first()
        .and_then(|m| ProcessorModel::ALL.into_iter().find(|p| p.name() == m))
        .unwrap_or(ProcessorModel::ThreeD2A);
    let benchmark: Benchmark = args
        .get(1)
        .and_then(|b| b.parse().ok())
        .unwrap_or(Benchmark::Gzip);
    let watts: f64 = args.get(2).and_then(|w| w.parse().ok()).unwrap_or(7.0);

    let scale = RunScale {
        warmup_instructions: 30_000,
        instructions: 200_000,
        thermal_grid: 50,
    };
    let perf = simulate(&SimConfig::nominal(model, scale), benchmark);
    let mut chip = build_power_map(
        &perf,
        &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(watts))),
    );
    if model.has_checker() {
        override_checker_power(&mut chip, Watts(watts));
    }
    let plan = model.floorplan();
    let r = solve(&plan, &chip.map, &ThermalConfig::paper()).expect("thermal solve");
    println!(
        "{} / {} / checker {watts} W: chip {:.1} W, peak {} at {:?}",
        model,
        benchmark,
        chip.total().0,
        r.peak(),
        r.hottest_cell()
    );
    for (d, _) in plan.dies.iter().enumerate() {
        println!("\ndie {d} heat map:");
        print!("{}", rmt3d::report::heatmap(r.die_field(d), 50, 2));
    }
    println!();
    for die in &plan.dies {
        for b in &die.blocks {
            let w = chip.map.get(b.id);
            if w.0 > 0.3 {
                println!(
                    "{:24} {:6.2}W {:5.2}mm2 {:5.2}W/mm2 peak={}",
                    b.id.to_string(),
                    w.0,
                    b.rect.area().0,
                    w.0 / b.rect.area().0,
                    r.block_peak(b.id).expect("block exists")
                );
            }
        }
    }
}
