//! The `rmt3d serve` daemon: accept loop, scheduler, and fan-out.
//!
//! Three kinds of threads cooperate around one mutex-guarded
//! [`State`]:
//!
//! - the **scheduler** (the thread that called [`serve`]) pops the
//!   highest-priority queued job and executes it on the existing
//!   work-stealing pool via `run_sweep` / `run_campaign_watched`, one
//!   job at a time — the pool already saturates the machine within a
//!   job, so running jobs concurrently would only thrash the cores;
//! - the **accept loop** hands each TCP connection to its own handler
//!   thread;
//! - **handler** threads parse newline-delimited JSON requests and
//!   answer them. `watch` registers an mpsc sender under the job id;
//!   the executing job's telemetry sink forwards every event to all
//!   subscribers, dropping any whose client disconnected — a dead
//!   watcher can never stall the queue.
//!
//! Shutdown (`{"op":"shutdown"}`) stops the accept loop and the
//! scheduler after the in-flight job drains; queued jobs stay in the
//! journal, so a restarted daemon resumes exactly the remainder. A
//! killed daemon loses nothing either — the journal is flushed before
//! every acknowledgement — it merely re-runs the job that was
//! in-flight, which the shared result cache turns into cache hits for
//! every item that had already been saved.

use crate::metrics::{
    sample_line, CacheCounters, DaemonMetrics, MetricsRing, TraceLog, METRICS_RING_CAP,
    METRICS_RING_FILE, TRACE_LOG_FILE,
};
use crate::payload::JobPayload;
use crate::proto::{
    error_line, json_str, parse_request, read_request_line, Request, RequestLine, MAX_REQUEST_LINE,
};
use crate::queue::{Cancelled, JobEntry, JobOutcome, JobQueue, JobState};
use rmt3d_campaign::run_campaign_watched;
use rmt3d_obs::ledger::{unix_now_ms, write_atomic, RunHandle, RunLedger};
use rmt3d_obs::{metrics_to_json, RunObserver};
use rmt3d_sweep::{codec, run_sweep, CacheMode, ResultStore, SweepOptions};
use rmt3d_telemetry::json::JsonObject;
use rmt3d_telemetry::{Event, Sink};
use std::collections::HashMap;
use std::io::{self, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Queue + journal directory (also holds campaign reports).
    pub state_dir: PathBuf,
    /// Shared content-addressed result cache directory.
    pub cache_dir: PathBuf,
    /// Pool workers per job; 0 means available parallelism.
    pub workers: usize,
    /// When set, LRU-evict the result cache down to this many bytes
    /// after every job.
    pub cache_max_bytes: Option<u64>,
    /// Run-ledger root; `None` disables ledger registration.
    pub runs_root: Option<PathBuf>,
    /// Suppress stderr chatter.
    pub quiet: bool,
}

struct State {
    queue: JobQueue,
    watchers: HashMap<String, Vec<mpsc::Sender<String>>>,
    cancels: HashMap<String, Arc<AtomicBool>>,
    running: Option<String>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

struct Ctx {
    shared: Arc<Shared>,
    store: ResultStore,
    state_dir: PathBuf,
    quiet: bool,
    inst: Arc<Instruments>,
}

/// The daemon's observability bundle: live counters/histograms, the
/// bounded `daemon.metrics.jsonl` time-series ring, and the raw span
/// log behind `trace-report --chrome-out`. Ring or log open failures
/// degrade to `None` (counted, warned) — observability must never take
/// the queue down with it.
struct Instruments {
    metrics: DaemonMetrics,
    ring: Mutex<Option<MetricsRing>>,
    trace: Mutex<Option<TraceLog>>,
}

impl Instruments {
    fn open(state_dir: &Path, quiet: bool) -> Instruments {
        let metrics = DaemonMetrics::new();
        let ring = match MetricsRing::open(&state_dir.join(METRICS_RING_FILE), METRICS_RING_CAP) {
            Ok(r) => Some(r),
            Err(e) => {
                metrics.note_metrics_write_error();
                if !quiet {
                    eprintln!("serve: warning: metrics ring disabled: {e}");
                }
                None
            }
        };
        let trace = match TraceLog::open(&state_dir.join(TRACE_LOG_FILE)) {
            Ok(t) => Some(t),
            Err(e) => {
                metrics.note_metrics_write_error();
                if !quiet {
                    eprintln!("serve: warning: span trace log disabled: {e}");
                }
                None
            }
        };
        Instruments {
            metrics,
            ring: Mutex::new(ring),
            trace: Mutex::new(trace),
        }
    }

    /// Opens a job-lifecycle phase span in the trace log.
    fn span_begin(&self, job: u64, phase: &'static str) {
        let ts = self.metrics.tick();
        self.trace_event(&Event::JobSpanBegin { job, phase, ts });
    }

    /// Closes a job-lifecycle phase span in the trace log.
    fn span_end(&self, job: u64, phase: &'static str, wall_nanos: u64) {
        let ts = self.metrics.tick();
        self.trace_event(&Event::JobSpanEnd {
            job,
            phase,
            ts,
            wall_nanos,
        });
    }

    fn trace_event(&self, event: &Event) {
        let mut guard = self.trace.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(log) = guard.as_mut() {
            if log.append(event).is_err() {
                self.metrics.note_metrics_write_error();
            }
        }
    }
}

/// Appends one snapshot of the daemon to the time-series ring. Takes
/// the state lock itself (briefly) — call without holding it.
fn sample_now(shared: &Shared, inst: &Instruments, store: &ResultStore) {
    let (queued, running, done, failed, cancelled, watchers) = {
        let st = lock(shared);
        (
            st.queue.count(JobState::Queued) as u64,
            st.queue.count(JobState::Running) as u64,
            st.queue.count(JobState::Done) as u64,
            st.queue.count(JobState::Failed) as u64,
            st.queue.count(JobState::Cancelled) as u64,
            st.watchers.values().map(Vec::len).sum::<usize>() as u64,
        )
    };
    let counters = store.stats();
    let (entries, bytes) = store.totals().unwrap_or((0, 0));
    inst.metrics
        .record_gauge("daemon_queue_depth", (queued + running) as f64);
    let line = sample_line(
        unix_now_ms(),
        queued,
        running,
        done,
        failed,
        cancelled,
        watchers,
        &CacheCounters {
            hits: counters.hits,
            misses: counters.misses,
            verify_failures: counters.verify_failures,
            entries,
            bytes,
        },
        &inst.metrics,
    );
    let mut guard = inst.ring.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(ring) = guard.as_mut() {
        if ring.append(&line).is_err() {
            inst.metrics.note_metrics_write_error();
        }
    }
}

/// Runs the daemon on an already-bound listener until a shutdown
/// request drains it. Blocks the calling thread.
///
/// # Errors
///
/// Returns a message when the queue or the result store cannot be
/// opened, or the listener cannot be configured.
pub fn serve(listener: TcpListener, opts: ServeOptions) -> Result<(), String> {
    let queue = JobQueue::open(&opts.state_dir)
        .map_err(|e| format!("cannot open queue {}: {e}", opts.state_dir.display()))?;
    let store = ResultStore::open(&opts.cache_dir)
        .map_err(|e| format!("cannot open cache {}: {e}", opts.cache_dir.display()))?;
    let recovered = queue.count(JobState::Queued);
    if !opts.quiet {
        let addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string());
        eprintln!(
            "serve: listening on {addr}, cache {}, {recovered} queued job(s) recovered",
            opts.cache_dir.display()
        );
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue,
            watchers: HashMap::new(),
            cancels: HashMap::new(),
            running: None,
            shutdown: false,
        }),
        wake: Condvar::new(),
    });
    let inst = Arc::new(Instruments::open(&opts.state_dir, opts.quiet));
    let ctx = Arc::new(Ctx {
        shared: Arc::clone(&shared),
        store: store.clone(),
        state_dir: opts.state_dir.clone(),
        quiet: opts.quiet,
        inst: Arc::clone(&inst),
    });
    // First ring sample: the recovered queue as the daemon saw it at
    // startup, so a restart is visible in the time-series.
    sample_now(&shared, &inst, &store);
    let acceptor = thread::spawn(move || accept_loop(listener, ctx));
    scheduler(&shared, &store, &opts, &inst);
    // Release any watcher still blocked on a queued job, then let the
    // accept loop notice the shutdown flag and exit.
    let mut st = lock(&shared);
    let ids: Vec<String> = st.watchers.keys().cloned().collect();
    for id in ids {
        if let Some(entry) = st.queue.get(&id) {
            let line = job_done_line(entry);
            broadcast(&mut st, &id, &line);
        }
        st.watchers.remove(&id);
    }
    drop(st);
    let _ = store.flush_index();
    let _ = acceptor.join();
    if !opts.quiet {
        eprintln!(
            "serve: drained, queue persisted under {}",
            opts.state_dir.display()
        );
    }
    Ok(())
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|p| p.into_inner())
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>) {
    loop {
        if lock(&ctx.shared).shutdown {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = Arc::clone(&ctx);
                thread::spawn(move || handle_client(stream, &ctx));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn scheduler(shared: &Arc<Shared>, store: &ResultStore, opts: &ServeOptions, inst: &Instruments) {
    loop {
        let seq = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(seq) = st.queue.next_ready() {
                    break seq;
                }
                st = shared
                    .wake
                    .wait_timeout(st, Duration::from_millis(250))
                    .map(|(guard, _)| guard)
                    .unwrap_or_else(|p| p.into_inner().0);
            }
        };
        execute_job(shared, store, opts, seq, inst);
    }
}

/// Forwards every telemetry event the engine emits — JobStarted,
/// JobFinished (with ETA), JobCacheHit, JobStalled, PoolStats,
/// CacheStats, CampaignTrial — to the job's subscribers as JSON lines
/// tagged with the job id, and tees them into the run ledger's status
/// observer.
struct FanoutSink {
    shared: Arc<Shared>,
    job_id: String,
    observer: Option<RunObserver>,
}

impl Sink for FanoutSink {
    fn record(&mut self, event: &Event) {
        if let Some(obs) = self.observer.as_mut() {
            obs.record(event);
        }
        let line = tag_line(&self.job_id, &event.to_json_line(false));
        let mut st = lock(&self.shared);
        broadcast(&mut st, &self.job_id, &line);
    }
}

fn execute_job(
    shared: &Arc<Shared>,
    store: &ResultStore,
    opts: &ServeOptions,
    seq: u64,
    inst: &Instruments,
) {
    let (id, payload, spec_hash, cancel, submitted_unix_ms) = {
        let mut st = lock(shared);
        let Some(entry) = st.queue.iter().find(|j| j.seq == seq) else {
            return;
        };
        if entry.state != JobState::Queued {
            return;
        }
        let id = entry.id.clone();
        let payload = entry.payload.clone();
        let spec_hash = entry.spec_hash;
        let submitted_unix_ms = entry.submitted_unix_ms;
        let cancel = Arc::new(AtomicBool::new(false));
        st.cancels.insert(id.clone(), Arc::clone(&cancel));
        (id, payload, spec_hash, cancel, submitted_unix_ms)
    };

    // The scheduler leased the job: close its queued phase (wait time
    // from the journaled submission stamp) and open the lease phase.
    let queue_wait_ms = unix_now_ms().saturating_sub(submitted_unix_ms);
    inst.metrics
        .record_queue_wait(payload.kind(), queue_wait_ms);
    inst.span_end(seq, "queued", queue_wait_ms.saturating_mul(1_000_000));
    inst.span_begin(seq, "leased");
    let lease_started = Instant::now();

    let registration = opts
        .runs_root
        .as_ref()
        .and_then(|root| register_run(root, &payload, &id, spec_hash, opts.quiet));
    let (handle, observer) = match registration {
        Some((h, o)) => (Some(h), Some(o)),
        None => (None, None),
    };
    let run_id = handle.as_ref().map(|h| h.run_id().to_string());

    {
        let mut st = lock(shared);
        st.queue.mark_started(&id, run_id.as_deref());
        st.running = Some(id.clone());
        let line = state_line(&id, "running", run_id.as_deref());
        broadcast(&mut st, &id, &line);
    }
    if !opts.quiet {
        eprintln!("serve: {id} started ({})", payload.summary());
    }
    inst.span_end(seq, "leased", lease_started.elapsed().as_nanos() as u64);
    inst.span_begin(seq, "run");
    sample_now(shared, inst, store);
    let run_started = Instant::now();

    let mut sink = FanoutSink {
        shared: Arc::clone(shared),
        job_id: id.clone(),
        observer,
    };
    let (state, outcome, error) = match &payload {
        JobPayload::Sweep { .. } => {
            let jobs = payload.sweep_spec().expand();
            let sweep_opts = SweepOptions {
                jobs: opts.workers,
                cache: CacheMode::Dir(opts.cache_dir.clone()),
                watchdog: None,
                cancel: Some(Arc::clone(&cancel)),
            };
            match run_sweep(jobs, &sweep_opts, &mut sink) {
                Ok(report) => {
                    let outcome = JobOutcome {
                        executed: report.executed as u64,
                        cache_hits: report.cache_hits as u64,
                        failures: report.failures as u64,
                    };
                    let error = report.records.iter().find_map(|r| {
                        r.outcome
                            .as_ref()
                            .err()
                            .map(|e| format!("{}: {e}", r.job.label()))
                    });
                    let state = if cancel.load(Ordering::SeqCst) {
                        JobState::Cancelled
                    } else if report.failures > 0 {
                        JobState::Failed
                    } else {
                        JobState::Done
                    };
                    (state, outcome, error)
                }
                Err(e) => (JobState::Failed, JobOutcome::default(), Some(e)),
            }
        }
        JobPayload::Campaign { .. } => {
            let spec = payload.campaign_spec();
            match run_campaign_watched(&spec, opts.workers, None, &mut sink) {
                Ok(report) => {
                    let violations = report.violations().len() as u64;
                    let total = payload.total_jobs();
                    let report_dir = opts.state_dir.join("results");
                    let written = std::fs::create_dir_all(&report_dir).and_then(|()| {
                        write_atomic(&report_dir.join(format!("{id}.jsonl")), &report.to_jsonl())
                    });
                    if let Err(e) = written {
                        eprintln!("serve: warning: cannot write campaign report for {id}: {e}");
                    }
                    let outcome = JobOutcome {
                        executed: total,
                        cache_hits: 0,
                        failures: violations,
                    };
                    let state = if cancel.load(Ordering::SeqCst) {
                        JobState::Cancelled
                    } else if violations > 0 {
                        JobState::Failed
                    } else {
                        JobState::Done
                    };
                    let error = (violations > 0).then(|| report.summary());
                    (state, outcome, error)
                }
                Err(e) => (JobState::Failed, JobOutcome::default(), Some(e)),
            }
        }
    };

    let run_nanos = run_started.elapsed().as_nanos() as u64;
    inst.metrics
        .record_exec(payload.kind(), run_nanos / 1_000_000);
    inst.span_end(seq, "run", run_nanos);
    inst.span_begin(seq, "store_write");
    let store_started = Instant::now();

    let outcome_str = match state {
        JobState::Done => "ok",
        JobState::Cancelled => "cancelled",
        _ => "failed",
    };
    let observer = sink.observer.take();
    finish_run(handle, observer, outcome_str, &inst.metrics);

    if let Some(max) = opts.cache_max_bytes {
        match store.evict_to(max) {
            Ok(report) => {
                inst.metrics.note_evictions(report.evicted_entries);
                if report.evicted_entries > 0 && !opts.quiet {
                    eprintln!(
                        "serve: cache evicted {} entr{} ({} bytes), {} bytes retained",
                        report.evicted_entries,
                        if report.evicted_entries == 1 {
                            "y"
                        } else {
                            "ies"
                        },
                        report.evicted_bytes,
                        report.remaining_bytes,
                    );
                }
            }
            Err(e) => eprintln!("serve: warning: cache eviction failed: {e}"),
        }
    }
    inst.span_end(
        seq,
        "store_write",
        store_started.elapsed().as_nanos() as u64,
    );

    {
        let mut st = lock(shared);
        st.queue
            .mark_finished(&id, state, outcome, error.as_deref());
        st.running = None;
        st.cancels.remove(&id);
        if let Some(entry) = st.queue.get(&id) {
            let line = job_done_line(entry);
            broadcast(&mut st, &id, &line);
        }
        st.watchers.remove(&id);
    }
    // Close the outer lifecycle span and snapshot the daemon with the
    // job in its terminal state.
    inst.span_end(
        seq,
        "job",
        unix_now_ms()
            .saturating_sub(submitted_unix_ms)
            .saturating_mul(1_000_000),
    );
    sample_now(shared, inst, store);
    if !opts.quiet {
        eprintln!(
            "serve: {id} {}: simulated {}, cache-hit {}, failed {}",
            state.as_str(),
            outcome.executed,
            outcome.cache_hits,
            outcome.failures,
        );
    }
}

fn register_run(
    root: &Path,
    payload: &JobPayload,
    id: &str,
    spec_hash: u64,
    quiet: bool,
) -> Option<(RunHandle, RunObserver)> {
    let ledger = match RunLedger::open(root) {
        Ok(l) => l,
        Err(e) => {
            eprintln!(
                "serve: warning: run ledger disabled: cannot open {}: {e}",
                root.display()
            );
            return None;
        }
    };
    let mut config = payload.config();
    config.push(("source".to_string(), "serve".to_string()));
    config.push(("job".to_string(), id.to_string()));
    let handle = match ledger.create_run(payload.kind(), spec_hash, payload.total_jobs(), &config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: warning: run ledger disabled: cannot create run: {e}");
            return None;
        }
    };
    if !quiet {
        eprintln!(
            "serve: {id} run {} ({})",
            handle.run_id(),
            handle.dir().display()
        );
    }
    let observer = RunObserver::new(
        handle.status_path(),
        handle.run_id(),
        payload.kind(),
        payload.total_jobs(),
    );
    Some((handle, observer))
}

fn finish_run(
    handle: Option<RunHandle>,
    observer: Option<RunObserver>,
    outcome: &str,
    metrics: &DaemonMetrics,
) {
    if let Some(mut obs) = observer {
        if let Err(e) = obs.finalize(outcome) {
            metrics.note_metrics_write_error();
            eprintln!("serve: warning: status write failed: {e}");
        }
        if let Some(h) = handle.as_ref() {
            let json = metrics_to_json(obs.registry());
            if let Err(e) = write_atomic(&h.metrics_path(), &json) {
                // Counted, not just logged: the failure shows up in the
                // `stats` line as `metrics_write_errors`, so a daemon
                // quietly losing its run artifacts is visible to every
                // client instead of only to whoever tails stderr.
                metrics.note_metrics_write_error();
                eprintln!("serve: warning: metrics write failed: {e}");
            }
        }
    }
    if let Some(mut h) = handle {
        if let Err(e) = h.finish(outcome) {
            metrics.note_metrics_write_error();
            eprintln!("serve: warning: manifest write failed: {e}");
        }
    }
}

fn broadcast(st: &mut State, job_id: &str, line: &str) {
    if let Some(subs) = st.watchers.get_mut(job_id) {
        // A send fails only when the watcher's handler thread is gone
        // (client disconnected); dropping it here is what keeps dead
        // clients from stalling the queue.
        subs.retain(|tx| tx.send(line.to_string()).is_ok());
    }
}

fn tag_line(job_id: &str, event_line: &str) -> String {
    debug_assert!(event_line.starts_with('{'));
    format!("{{\"job\":{},{}", json_str(job_id), &event_line[1..])
}

fn state_line(job_id: &str, state: &str, run_id: Option<&str>) -> String {
    let mut o = JsonObject::new();
    o.str("job", job_id)
        .str("event", "job_state")
        .str("state", state)
        .str("run_id", run_id.unwrap_or(""));
    o.finish()
}

/// The terminal `watch` line. Also sent when the daemon drains with
/// the job still queued — "job_done" means "this watch stream is
/// over", and `state` tells the client what actually happened.
fn job_done_line(entry: &JobEntry) -> String {
    let outcome = entry.outcome.unwrap_or_default();
    let mut o = JsonObject::new();
    o.str("job", &entry.id)
        .str("event", "job_done")
        .str("state", entry.state.as_str())
        .u64("executed", outcome.executed)
        .u64("cache_hits", outcome.cache_hits)
        .u64("failures", outcome.failures)
        .str("run_id", entry.run_id.as_deref().unwrap_or(""))
        .str("error", entry.error.as_deref().unwrap_or(""));
    o.finish()
}

fn write_line(w: &mut TcpStream, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")
}

fn handle_client(stream: TcpStream, ctx: &Ctx) {
    ctx.inst.metrics.connection_opened();
    handle_client_inner(stream, ctx);
    ctx.inst.metrics.connection_closed();
}

fn handle_client_inner(stream: TcpStream, ctx: &Ctx) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_request_line(&mut reader, MAX_REQUEST_LINE) {
            Ok(Some(RequestLine::Text(l))) => l,
            Ok(Some(RequestLine::Oversized)) => {
                let msg = format!("request line exceeds {MAX_REQUEST_LINE} bytes");
                if write_line(&mut writer, &error_line(&msg)).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let flow = match parse_request(&line) {
            Err(e) => write_line(&mut writer, &error_line(&e)),
            Ok(req) => dispatch(req, &mut writer, ctx),
        };
        if flow.is_err() {
            return;
        }
    }
}

fn dispatch(req: Request, writer: &mut TcpStream, ctx: &Ctx) -> io::Result<()> {
    match req {
        Request::Ping => write_line(writer, "{\"ok\":true}"),
        Request::Shutdown => {
            let in_flight = {
                let mut st = lock(&ctx.shared);
                st.shutdown = true;
                u64::from(st.running.is_some())
            };
            ctx.shared.wake.notify_all();
            if !ctx.quiet {
                eprintln!("serve: shutdown requested, draining {in_flight} in-flight job(s)");
            }
            let mut o = JsonObject::new();
            o.bool("ok", true)
                .str("state", "draining")
                .u64("in_flight", in_flight);
            write_line(writer, &o.finish())
        }
        Request::Submit {
            kind,
            spec,
            priority,
        } => {
            let (line, accepted) = {
                let mut st = lock(&ctx.shared);
                if st.shutdown {
                    (error_line("daemon is shutting down"), None)
                } else {
                    match st.queue.submit(&kind, &spec, priority) {
                        Err(e) => (error_line(&e), None),
                        Ok((id, deduped)) => {
                            let entry = st.queue.get(&id).expect("submitted job exists");
                            let mut o = JsonObject::new();
                            o.bool("ok", true)
                                .str("job", &id)
                                .str("state", entry.state.as_str())
                                .bool("deduped", deduped)
                                .str("spec_hash", &format!("{:016x}", entry.spec_hash))
                                .u64("total_jobs", entry.payload.total_jobs());
                            let summary = entry.payload.summary();
                            let seq = entry.seq;
                            (o.finish(), (!deduped).then_some((id, summary, seq)))
                        }
                    }
                }
            };
            ctx.shared.wake.notify_all();
            if let Some((id, summary, seq)) = accepted {
                // A fresh (non-deduped) submission opens the outer
                // lifecycle span and the queued phase; the scheduler
                // closes them as the job advances.
                ctx.inst.span_begin(seq, "job");
                ctx.inst.span_begin(seq, "queued");
                sample_now(&ctx.shared, &ctx.inst, &ctx.store);
                if !ctx.quiet {
                    eprintln!("serve: {id} submitted ({summary})");
                }
            }
            write_line(writer, &line)
        }
        Request::Jobs => {
            let line = {
                let st = lock(&ctx.shared);
                let mut out = String::from("{\"ok\":true,\"server\":");
                out.push_str(if st.shutdown {
                    "\"draining\""
                } else {
                    "\"running\""
                });
                out.push_str(",\"jobs\":[");
                for (i, entry) in st.queue.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&entry.to_json());
                }
                out.push_str("]}");
                out
            };
            write_line(writer, &line)
        }
        Request::Stats => {
            let (queued, running, done, failed, cancelled, watchers) = {
                let st = lock(&ctx.shared);
                (
                    st.queue.count(JobState::Queued),
                    st.queue.count(JobState::Running),
                    st.queue.count(JobState::Done),
                    st.queue.count(JobState::Failed),
                    st.queue.count(JobState::Cancelled),
                    st.watchers.values().map(Vec::len).sum::<usize>(),
                )
            };
            let counters = ctx.store.stats();
            let (entries, bytes) = ctx.store.totals().unwrap_or((0, 0));
            let m = &ctx.inst.metrics;
            let mut o = JsonObject::new();
            o.bool("ok", true)
                .u64("queued", queued as u64)
                .u64("running", running as u64)
                .u64("done", done as u64)
                .u64("failed", failed as u64)
                .u64("cancelled", cancelled as u64)
                .u64("queue_depth", (queued + running) as u64)
                .u64("watchers", watchers as u64)
                .u64("connections", m.connections_open())
                .u64("connections_total", m.connections_total())
                .u64("cache_hits", counters.hits)
                .u64("cache_misses", counters.misses)
                .u64("cache_verify_failures", counters.verify_failures)
                .u64("cache_entries", entries)
                .u64("cache_bytes", bytes)
                .u64("cache_evictions", m.cache_evictions())
                .u64("metrics_write_errors", m.metrics_write_errors())
                .raw("metrics", &m.metrics_doc());
            write_line(writer, &o.finish())
        }
        Request::Cancel { job } => {
            let line = {
                let mut st = lock(&ctx.shared);
                match st.queue.cancel(&job) {
                    Err(e) => error_line(&e),
                    Ok(Cancelled::Queued) => {
                        if let Some(entry) = st.queue.get(&job) {
                            let done = job_done_line(entry);
                            broadcast(&mut st, &job, &done);
                        }
                        st.watchers.remove(&job);
                        cancel_response(&job, "cancelled")
                    }
                    Ok(Cancelled::InFlight) => {
                        if let Some(flag) = st.cancels.get(&job) {
                            flag.store(true, Ordering::SeqCst);
                        }
                        cancel_response(&job, "cancel_requested")
                    }
                }
            };
            write_line(writer, &line)
        }
        Request::Watch { job } => {
            let (first, rx) = {
                let mut st = lock(&ctx.shared);
                match st.queue.get(&job) {
                    None => (error_line(&format!("unknown job {job:?}")), None),
                    Some(entry) if entry.state.is_terminal() => (job_done_line(entry), None),
                    Some(entry) => {
                        let ack = state_line(&job, entry.state.as_str(), entry.run_id.as_deref());
                        let (tx, rx) = mpsc::channel();
                        st.watchers.entry(job.clone()).or_default().push(tx);
                        (ack, Some(rx))
                    }
                }
            };
            write_line(writer, &first)?;
            let Some(rx) = rx else {
                return Ok(());
            };
            // Stream until the terminal line or until the daemon drops
            // every sender (drain). A failed write ends the stream; the
            // executor notices the dead receiver on its next send.
            while let Ok(line) = rx.recv() {
                write_line(writer, &line)?;
                if line.contains("\"event\":\"job_done\"") {
                    break;
                }
            }
            Ok(())
        }
        Request::Result { job } => {
            let looked_up = {
                let st = lock(&ctx.shared);
                st.queue
                    .get(&job)
                    .map(|e| (e.payload.clone(), e.state, e.run_id.clone()))
            };
            let Some((payload, state, run_id)) = looked_up else {
                return write_line(writer, &error_line(&format!("unknown job {job:?}")));
            };
            let line = match &payload {
                JobPayload::Sweep { .. } => {
                    let mut out = String::from("{\"ok\":true,\"job\":");
                    out.push_str(&json_str(&job));
                    out.push_str(",\"state\":");
                    out.push_str(&json_str(state.as_str()));
                    out.push_str(",\"run_id\":");
                    out.push_str(&json_str(run_id.as_deref().unwrap_or("")));
                    out.push_str(",\"results\":[");
                    for (i, sweep_job) in payload.sweep_spec().expand().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"label\":");
                        out.push_str(&json_str(&sweep_job.label()));
                        out.push_str(",\"encoded\":");
                        // Loads count as cache hits and touch the usage
                        // index: serving results *is* cache traffic.
                        match ctx.store.load(sweep_job) {
                            Some(result) => out.push_str(&json_str(&codec::encode(&result))),
                            None => out.push_str("\"\""),
                        }
                        out.push('}');
                    }
                    out.push_str("]}");
                    out
                }
                JobPayload::Campaign { .. } => {
                    let path = ctx.state_dir.join("results").join(format!("{job}.jsonl"));
                    let report = std::fs::read_to_string(&path).unwrap_or_default();
                    let mut o = JsonObject::new();
                    o.bool("ok", true)
                        .str("job", &job)
                        .str("state", state.as_str())
                        .str("run_id", run_id.as_deref().unwrap_or(""))
                        .str("report", &report);
                    o.finish()
                }
            };
            write_line(writer, &line)
        }
    }
}

fn cancel_response(job: &str, state: &str) -> String {
    let mut o = JsonObject::new();
    o.bool("ok", true).str("job", job).str("state", state);
    o.finish()
}
